//! Allocation statistics for the memory-overhead comparisons of
//! Section 4.4.

/// Counters maintained by every [`crate::Allocator`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    allocations: u64,
    frees: u64,
    bytes_requested: u64,
    bytes_live: u64,
    /// High-water mark of live bytes.
    bytes_live_peak: u64,
    /// Pages obtained from the virtual space (footprint).
    pages: u64,
    page_bytes: u64,
    /// Allocations placed by the last-resort scavenging path after a
    /// fresh page was denied (arena limit or injected fault).
    fallback_allocations: u64,
    /// Hinted allocations whose co-location hint could not be honored
    /// (the hint's page was full, foreign, dropped, or corrupted).
    degraded_hints: u64,
}

impl HeapStats {
    /// Creates zeroed stats for a heap with the given page size.
    pub fn new(page_bytes: u64) -> Self {
        HeapStats {
            page_bytes,
            ..Self::default()
        }
    }

    /// Number of successful allocations.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Number of frees.
    pub fn frees(&self) -> u64 {
        self.frees
    }

    /// Sum of all requested sizes.
    pub fn bytes_requested(&self) -> u64 {
        self.bytes_requested
    }

    /// Currently live bytes (requested minus freed).
    pub fn bytes_live(&self) -> u64 {
        self.bytes_live
    }

    /// Peak of [`Self::bytes_live`].
    pub fn bytes_live_peak(&self) -> u64 {
        self.bytes_live_peak
    }

    /// Pages the allocator has claimed from the address space.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Heap footprint in bytes (`pages × page size`) — the quantity the
    /// paper's Section 4.4 memory-overhead percentages compare. The
    /// *new-block* strategy, which optimistically reserves the rest of each
    /// cache block, shows up here as extra pages.
    pub fn footprint_bytes(&self) -> u64 {
        self.pages * self.page_bytes
    }

    /// Allocations that succeeded only via the scavenging fallback after
    /// fresh pages were denied — the paper's "if space permits" degraded
    /// to "wherever space remains".
    pub fn fallback_allocations(&self) -> u64 {
        self.fallback_allocations
    }

    /// Hinted allocations placed away from their hint's page — the hint
    /// page was full (routine once a structure outgrows one page),
    /// foreign, or tampered by fault injection. Dropped/corrupted hints
    /// push this strictly above a fault-free run of the same workload.
    pub fn degraded_hints(&self) -> u64 {
        self.degraded_hints
    }

    /// Footprint of this heap relative to `other`, as a percentage
    /// overhead (positive means this heap used more memory).
    pub fn overhead_vs(&self, other: &HeapStats) -> f64 {
        Self::overhead_pct(self.footprint_bytes(), other.footprint_bytes())
    }

    /// Percentage overhead of `bytes` relative to `baseline`, with the
    /// exact float expression `overhead_vs` has always used — exposed so
    /// checkpointed figure runs can reproduce overhead lines bit-for-bit
    /// from stored byte counts.
    pub fn overhead_pct(bytes: u64, baseline: u64) -> f64 {
        if baseline == 0 {
            0.0
        } else {
            100.0 * (bytes as f64 - baseline as f64) / baseline as f64
        }
    }

    pub(crate) fn record_alloc(&mut self, size: u64) {
        self.allocations += 1;
        self.bytes_requested += size;
        self.bytes_live += size;
        self.bytes_live_peak = self.bytes_live_peak.max(self.bytes_live);
    }

    pub(crate) fn record_free(&mut self, size: u64) {
        self.frees += 1;
        self.bytes_live = self.bytes_live.saturating_sub(size);
    }

    pub(crate) fn record_pages(&mut self, n: u64) {
        self.pages += n;
    }

    pub(crate) fn record_fallback(&mut self) {
        self.fallback_allocations += 1;
    }

    pub(crate) fn record_degraded(&mut self) {
        self.degraded_hints += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_bytes_track_alloc_free() {
        let mut s = HeapStats::new(8192);
        s.record_alloc(100);
        s.record_alloc(50);
        s.record_free(100);
        assert_eq!(s.bytes_live(), 50);
        assert_eq!(s.bytes_live_peak(), 150);
        assert_eq!(s.allocations(), 2);
        assert_eq!(s.frees(), 1);
    }

    #[test]
    fn overhead_percentage() {
        let mut a = HeapStats::new(8192);
        let mut b = HeapStats::new(8192);
        a.record_pages(112);
        b.record_pages(100);
        assert!((a.overhead_vs(&b) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_vs_empty_is_zero() {
        let a = HeapStats::new(8192);
        let b = HeapStats::new(8192);
        assert_eq!(a.overhead_vs(&b), 0.0);
    }
}
