//! Typed allocator errors.
//!
//! The paper's `ccmalloc` is defined by graceful degradation — a bad hint
//! "can only cost performance, never correctness" — and the same posture
//! extends to the allocator's own failure modes. Every condition the
//! simulated heaps can hit is a [`HeapError`] variant, surfaced by the
//! fallible `try_*` entry points of [`crate::Allocator`]; the classic
//! infallible entry points are thin wrappers that panic with the error's
//! `Display` text, so legacy callers keep their exact behaviour while new
//! callers (the fault-injection plane, checkpointed sweeps) can observe,
//! count, and recover from failures instead of aborting.

use std::fmt;

/// An allocation or free the heap could not perform.
///
/// `Display` renders the exact messages the historical panic paths used,
/// so `HeapError` is drop-in for both matching on variants and matching on
/// panic text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeapError {
    /// `free` of an address that is not the start of a live allocation —
    /// a double free, an interior pointer, or a stray address.
    InvalidFree {
        /// The address passed to `free`.
        addr: u64,
    },
    /// A zero-byte allocation request.
    ZeroAlloc,
    /// The heap needed fresh pages but the virtual space would not supply
    /// them — a configured arena limit was reached, or an injected fault
    /// denied the request — and no existing page could absorb the
    /// allocation.
    PageExhaustion {
        /// Pages the failed request needed.
        pages: u64,
    },
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::InvalidFree { addr } => {
                write!(f, "free of non-live address {addr:#x}")
            }
            HeapError::ZeroAlloc => write!(f, "zero-byte allocation"),
            HeapError::PageExhaustion { pages } => {
                write!(f, "page exhaustion: {pages} fresh page(s) unavailable")
            }
        }
    }
}

impl std::error::Error for HeapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_historical_panic_messages() {
        assert_eq!(
            HeapError::InvalidFree { addr: 0x1234 }.to_string(),
            "free of non-live address 0x1234"
        );
        assert_eq!(HeapError::ZeroAlloc.to_string(), "zero-byte allocation");
        assert!(HeapError::PageExhaustion { pages: 2 }
            .to_string()
            .contains("page exhaustion"));
    }
}
