//! `cc-audit` as an oracle for the allocators: a `ccmalloc`-built list
//! (paper Figure 4) must satisfy the clustering invariants its hints
//! promise; the same program on the baseline `Malloc` must not. Both
//! audits run purely off the heap's `LayoutSnapshot` — items from the
//! live set, affinity pairs from the recorded hints.

use cc_audit::{audit, AuditConfig, AuditInput, Rule};
use cc_heap::{Allocator, CcMalloc, Malloc, Strategy};
use cc_sim::MachineConfig;

const CELL: u64 = 20;
const CELLS: usize = 3_000;

fn machine() -> MachineConfig {
    MachineConfig::ultrasparc_e5000()
}

/// Builds the Figure 4 workload: a linked list grown cell by cell, each
/// allocation hinting at its predecessor, with an unrelated allocation
/// interleaved between cells when `noise` is set.
fn build_list<A: Allocator>(heap: &mut A, noise: bool) {
    let mut prev = None;
    for _ in 0..CELLS {
        prev = Some(heap.alloc_hint(CELL, prev));
        if noise {
            heap.alloc(CELL);
        }
    }
}

fn audit_heap<A: Allocator>(heap: &A) -> cc_audit::Report {
    let m = machine();
    let input = AuditInput::from_snapshot(&heap.snapshot(), m.l2, m.page_bytes, None);
    audit(&input, &AuditConfig::default())
}

#[test]
fn ccmalloc_hinted_list_audits_clean() {
    for strategy in Strategy::ALL {
        let mut heap = CcMalloc::new(&machine(), strategy);
        build_list(&mut heap, false);
        let report = audit_heap(&heap);
        assert!(report.is_clean(), "{strategy:?}:\n{}", report.to_text());
        assert_eq!(report.stats.colocation_score, Some(1.0), "{strategy:?}");
    }
}

#[test]
fn ccmalloc_new_block_survives_interleaved_noise() {
    // The point of the hint: co-location survives unrelated allocations
    // happening in between (where the contemporaneous-allocation
    // heuristic of Section 3.2.3 would fail). NewBlock shines here —
    // overflowing cells claim fresh blocks the noise hasn't colonized,
    // which is exactly why Section 4.4 finds it the best performer.
    let mut heap = CcMalloc::new(&machine(), Strategy::NewBlock);
    build_list(&mut heap, true);
    let report = audit_heap(&heap);
    assert!(report.is_clean(), "{}", report.to_text());
    let score = report.stats.colocation_score.unwrap();
    assert!(score > 0.95, "noise barely dents the score: {score}");
}

#[test]
fn malloc_list_with_noise_trips_cluster_01() {
    let mut heap = Malloc::new(machine().page_bytes);
    build_list(&mut heap, true);
    let report = audit_heap(&heap);
    let c1 = report.of_rule(Rule::Cluster01);
    assert_eq!(c1.len(), 1, "{}", report.to_text());
    assert_eq!(report.stats.colocation_score, Some(0.0));
    assert!(c1[0].message.contains("CLUSTER") || c1[0].rule == Rule::Cluster01);
    assert!(
        !c1[0].addrs.is_empty(),
        "findings carry offending addresses"
    );
}

#[test]
fn snapshot_survives_frees() {
    // Free every other cell; the audit runs on the survivors without
    // panicking and the score only improves (freed cells drop pairs).
    let mut heap = CcMalloc::new(&machine(), Strategy::Closest);
    let mut addrs = Vec::new();
    let mut prev = None;
    for _ in 0..CELLS {
        let a = heap.alloc_hint(CELL, prev);
        addrs.push(a);
        prev = Some(a);
    }
    for a in addrs.iter().step_by(2) {
        heap.free(*a);
    }
    let report = audit_heap(&heap);
    assert_eq!(report.stats.items, CELLS / 2);
    assert!(report.of_rule(Rule::Align01).is_empty());
}
