//! End-to-end tests over a live in-process server: the robustness
//! contracts of ISSUE — deadline errors, typed load shedding with
//! client-side retry, circuit-breaker quarantine, over-budget refusal,
//! graceful drain, and the headline isolation guarantee: a poisoned
//! session leaves concurrent sessions' replies *byte-identical* to a
//! fault-free run.

use cc_serve::breaker::BreakerConfig;
use cc_serve::client::{Backoff, Client};
use cc_serve::json::Json;
use cc_serve::proto::{ErrorKind, Op, Reply, Request};
use cc_serve::server::{ServeConfig, Server};

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_cap: 8,
        read_stall_ms: 500,
        drain_deadline_ms: 3_000,
        retry_after_ms: 5,
        // High threshold: repeated injected panics must degrade requests,
        // not quarantine the class (the breaker has its own test).
        breaker: BreakerConfig {
            threshold: 64,
            cooldown_ms: 300,
        },
        allow_chaos: true,
        ..ServeConfig::default()
    }
}

/// Polls the server's `health` until `f(queue_depth)` holds.
fn wait_health(client: &mut Client, mut f: impl FnMut(&Json) -> bool) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3);
    loop {
        let id = client.next_id();
        let reply = client
            .request(&Request {
                id,
                op: Op::Health,
                deadline_ms: None,
                params: Json::obj([]),
            })
            .expect("health");
        let (_, result) = reply.body.as_ref().expect("health ok");
        if f(result) {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "health condition never held; last: {}",
            result.encode()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

fn simulate_req(id: u64, keys: u64, searches: u64, seed: u64) -> Request {
    Request {
        id,
        op: Op::Simulate,
        deadline_ms: Some(10_000),
        params: Json::obj([
            ("keys", Json::Uint(keys)),
            ("searches", Json::Uint(searches)),
            ("seed", Json::Uint(seed)),
        ]),
    }
}

fn chaos_req(id: u64) -> Request {
    Request {
        id,
        op: Op::Simulate,
        deadline_ms: Some(10_000),
        params: Json::obj([
            ("keys", Json::Uint(256)),
            ("searches", Json::Uint(64)),
            ("chaos_panic", Json::Bool(true)),
        ]),
    }
}

/// Raw reply lines for a fixed request script on one session. Bytes, not
/// parsed structures: the isolation guarantee is about the wire.
fn session_script(addr: &str, reqs: &[Request]) -> Vec<String> {
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    reqs.iter()
        .map(|req| {
            writeln!(writer, "{}", req.encode()).expect("write");
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            line.trim_end().to_string()
        })
        .collect()
}

/// The tentpole guarantee: replies on healthy sessions are byte-identical
/// whether or not a concurrent session is being poisoned.
#[test]
fn poisoned_session_leaves_concurrent_replies_byte_identical() {
    let scripts: [&[Request]; 2] = [
        &[
            simulate_req(1, 1023, 500, 7),
            simulate_req(2, 511, 300, 8),
            simulate_req(3, 1023, 500, 7),
        ],
        &[
            simulate_req(10, 2047, 400, 9),
            simulate_req(11, 255, 200, 10),
        ],
    ];

    let run = |poison: bool| -> Vec<Vec<String>> {
        let server = Server::spawn(test_config()).expect("spawn");
        let addr = server.addr().to_string();
        let poisoner = poison.then(|| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for i in 0..4 {
                    let reply = client.request(&chaos_req(100 + i)).expect("reply");
                    assert!(
                        matches!(
                            reply.error_kind(),
                            Some(ErrorKind::Degraded) | Some(ErrorKind::BreakerOpen)
                        ),
                        "poison request got {reply:?}"
                    );
                }
            })
        });
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| {
                let addr = addr.clone();
                let script: Vec<Request> = script.to_vec();
                std::thread::spawn(move || session_script(&addr, &script))
            })
            .collect();
        let replies: Vec<Vec<String>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        if let Some(p) = poisoner {
            p.join().unwrap();
        }
        assert!(server.drain().clean, "drain must be clean");
        replies
    };

    let clean = run(false);
    let poisoned = run(true);
    assert_eq!(
        clean, poisoned,
        "a poisoned concurrent session must not perturb healthy sessions' reply bytes"
    );
    // And the replies are real successes, not matching errors.
    for line in clean.iter().flatten() {
        let reply = Reply::decode(line).expect("parses");
        assert!(reply.body.is_ok(), "{line}");
    }
}

#[test]
fn deadline_is_enforced_cooperatively() {
    let server = Server::spawn(test_config()).expect("spawn");
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    let req = Request {
        id: 1,
        op: Op::Simulate,
        deadline_ms: Some(50),
        params: Json::obj([
            ("keys", Json::Uint(256)),
            ("searches", Json::Uint(64)),
            ("chaos_sleep_ms", Json::Uint(2_000)),
        ]),
    };
    let t0 = std::time::Instant::now();
    let reply = client.request(&req).expect("reply");
    assert_eq!(
        reply.error_kind(),
        Some(ErrorKind::DeadlineExceeded),
        "{reply:?}"
    );
    assert!(
        t0.elapsed() < std::time::Duration::from_millis(1_500),
        "deadline reply must arrive well before the stall finishes"
    );
    assert!(server.metrics().get("serve.deadline.timeouts") >= 1);
    assert!(server.drain().clean);
}

#[test]
fn overload_sheds_with_retry_hint_and_retry_succeeds() {
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..test_config()
    };
    let server = Server::spawn(cfg).expect("spawn");
    let addr = server.addr().to_string();
    let mut probe = Client::connect(&addr).expect("connect");

    // Occupy the worker, then the single queue slot, with slow requests —
    // staged via health so the shed below is deterministic, not a race.
    let spawn_blocker = |id: u64| {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("connect");
            let req = Request {
                id,
                op: Op::Simulate,
                deadline_ms: Some(5_000),
                params: Json::obj([
                    ("keys", Json::Uint(256)),
                    ("searches", Json::Uint(64)),
                    ("chaos_sleep_ms", Json::Uint(600)),
                ]),
            };
            c.request(&req).expect("reply")
        })
    };
    let b1 = spawn_blocker(1);
    // Stage 1: the worker has popped blocker 1 (admitted, queue empty).
    wait_health(&mut probe, |h| {
        let admitted = h
            .get("metrics")
            .and_then(Json::as_str)
            .and_then(|m| Json::parse(m).ok())
            .and_then(|m| m.get("serve.requests.simulate").and_then(Json::as_u64))
            .unwrap_or(0);
        admitted >= 1 && h.get("queue_depth") == Some(&Json::Uint(0))
    });
    let b2 = spawn_blocker(2);
    // Stage 2: blocker 2 fills the one queue slot.
    wait_health(&mut probe, |h| h.get("queue_depth") == Some(&Json::Uint(1)));

    // Worker busy + queue full: this one must shed.
    let mut client = Client::connect(&addr).expect("connect");
    let reply = client.request(&simulate_req(9, 256, 64, 1)).expect("reply");
    match &reply.body {
        Err(e) => {
            assert_eq!(e.kind, ErrorKind::Overloaded, "{reply:?}");
            assert!(e.retry_after_ms.is_some(), "shed replies carry a hint");
        }
        Ok(_) => panic!("expected shed, got success (queue admitted a third job)"),
    }

    // The retry helper rides the hint and eventually gets through once
    // the blockers finish.
    let mut backoff = Backoff::new(77);
    let reply = client
        .request_with_retry(&simulate_req(10, 256, 64, 1), &mut backoff, 500)
        .expect("retries succeed");
    assert!(reply.body.is_ok(), "{reply:?}");
    let blockers = [b1, b2];

    for b in blockers {
        assert!(b.join().unwrap().body.is_ok());
    }
    assert!(server.metrics().get("serve.queue.sheds") >= 1);
    assert!(server.metrics().get("serve.errors.overloaded") >= 1);
    assert!(server.drain().clean);
}

#[test]
fn breaker_quarantines_a_panicking_class_and_recovers() {
    let cfg = ServeConfig {
        breaker: BreakerConfig {
            threshold: 2,
            cooldown_ms: 300,
        },
        ..test_config()
    };
    let server = Server::spawn(cfg).expect("spawn");
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");

    for i in 0..2 {
        let reply = client.request(&chaos_req(i)).expect("reply");
        assert_eq!(reply.error_kind(), Some(ErrorKind::Degraded), "{reply:?}");
    }
    // Class tripped: an honest request is refused without running.
    let reply = client.request(&simulate_req(5, 256, 64, 1)).expect("reply");
    match &reply.body {
        Err(e) => {
            assert_eq!(e.kind, ErrorKind::BreakerOpen, "{reply:?}");
            assert!(e.retry_after_ms.is_some());
        }
        Ok(_) => panic!("breaker failed to quarantine after threshold panics"),
    }
    // Other classes still serve (quarantine is per-class).
    let reply = client
        .request(&Request {
            id: 6,
            op: Op::Lint,
            deadline_ms: None,
            params: Json::obj([("source", Json::str("pub struct S { a: u8, b: u64 }"))]),
        })
        .expect("reply");
    assert!(reply.body.is_ok(), "{reply:?}");

    // After cooldown the probe closes the breaker again.
    std::thread::sleep(std::time::Duration::from_millis(400));
    let reply = client.request(&simulate_req(7, 256, 64, 1)).expect("reply");
    assert!(
        reply.body.is_ok(),
        "probe should close the breaker: {reply:?}"
    );
    assert!(server.metrics().get("serve.breaker.rejected") >= 1);
    assert!(server.drain().clean);
}

#[test]
fn oversized_workload_gets_typed_over_budget_pointing_at_sampling() {
    let server = Server::spawn(test_config()).expect("spawn");
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    // Past even the sampled-simulation budget (~4.4B estimated events).
    let reply = client
        .request(&simulate_req(1, 1 << 20, 200_000_000, 1))
        .expect("reply");
    match &reply.body {
        Err(e) => {
            assert_eq!(e.kind, ErrorKind::OverBudget, "{reply:?}");
            assert!(
                e.message
                    .contains("Representativeness of Simulation Intervals"),
                "over-budget errors must point at the sampling roadmap item: {}",
                e.message
            );
        }
        Ok(_) => panic!("a 200M-search replay must be refused"),
    }
    assert!(server.drain().clean);
}

/// The PR 9 headline: a request the seed server refused with
/// `over_budget` (10M-search workloads were the canonical example) now
/// gets a real answer — `sampled: true`, error-bound fields, byte-stable
/// across repeats (the second served from the sampled result cache).
#[test]
fn previously_refused_over_budget_request_now_gets_sampled_answer() {
    let server = Server::spawn(test_config()).expect("spawn");
    let addr = server.addr().to_string();
    // 250k searches × 10 events/search ≈ 2.5M estimated events: over the
    // 2.4M full-replay budget, which refused this request before.
    let req = simulate_req(1, 255, 250_000, 7);
    let lines = session_script(&addr, &[req.clone(), req]);
    let reply = Reply::decode(&lines[0]).expect("parses");
    let (_, result) = reply.body.as_ref().expect("sampled success");
    assert_eq!(result.get("sampled"), Some(&Json::Bool(true)));
    let sample = result.get("sample").expect("sample block");
    for field in [
        "intervals",
        "representatives",
        "coverage_pct",
        "confidence_pct",
        "error_bound_pct",
        "fallback_representatives",
        "lost_representatives",
    ] {
        assert!(sample.get(field).is_some(), "missing sample.{field}");
    }
    assert_eq!(sample.get("coverage_pct"), Some(&Json::Float(100.0)));
    assert_eq!(
        lines[0], lines[1],
        "sampled replies must be byte-stable, warm cache included"
    );
    assert!(server.drain().clean);
}

/// Sampler fault plane from the wire: poisoned representatives degrade
/// to neighbouring-interval fallbacks with counters — the reply is still
/// a success, and the degradation is visible, never silent.
#[test]
fn chaos_sample_poison_is_visible_and_non_silent() {
    let server = Server::spawn(test_config()).expect("spawn");
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    let reply = client
        .request(&Request {
            id: 1,
            op: Op::Simulate,
            deadline_ms: Some(30_000),
            params: Json::obj([
                ("keys", Json::Uint(255)),
                ("searches", Json::Uint(250_000)),
                ("seed", Json::Uint(7)),
                ("chaos_sample_poison", Json::Uint(2)),
            ]),
        })
        .expect("reply");
    let (_, result) = reply.body.as_ref().expect("degraded success");
    let sample = result.get("sample").expect("sample block");
    assert!(
        sample
            .get("fallback_representatives")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1,
        "poison must surface as fallback counters: {sample:?}"
    );
    assert!(server.drain().clean);
}

#[test]
fn health_and_wire_shutdown_drain_cleanly() {
    let server = Server::spawn(test_config()).expect("spawn");
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");

    let id = client.next_id();
    let reply = client
        .request(&Request {
            id,
            op: Op::Health,
            deadline_ms: None,
            params: Json::obj([]),
        })
        .expect("reply");
    let (_, result) = reply.body.as_ref().expect("health ok");
    assert_eq!(result.get("draining"), Some(&Json::Bool(false)));
    assert!(result.get("metrics").is_some());

    let reply = client
        .request(&Request {
            id: id + 1,
            op: Op::Shutdown,
            deadline_ms: None,
            params: Json::obj([]),
        })
        .expect("reply");
    assert!(reply.body.is_ok(), "{reply:?}");
    server.wait_for_shutdown();
    let outcome = server.drain();
    assert!(outcome.clean, "{outcome:?}");
}

#[test]
fn chaos_params_are_refused_without_allow_chaos() {
    let cfg = ServeConfig {
        allow_chaos: false,
        ..test_config()
    };
    let server = Server::spawn(cfg).expect("spawn");
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    let reply = client.request(&chaos_req(1)).expect("reply");
    assert_eq!(reply.error_kind(), Some(ErrorKind::BadRequest), "{reply:?}");
    assert!(server.drain().clean);
}
