//! Pins the exit-code convention for both serve binaries, shared with
//! `cc-audit`/`cc-lint`: 0 = clean, 1 = failure/violations, 2 = input
//! error.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

#[test]
fn serve_unknown_flag_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_cc-serve"))
        .arg("--frobnicate")
        .output()
        .expect("cc-serve runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag"), "{stderr}");
}

#[test]
fn serve_bad_number_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_cc-serve"))
        .args(["--workers", "many"])
        .output()
        .expect("cc-serve runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn serve_bind_failure_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_cc-serve"))
        .args(["--addr", "256.0.0.1:99999"])
        .output()
        .expect("cc-serve runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn serve_help_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_cc-serve"))
        .arg("--help")
        .output()
        .expect("cc-serve runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("--allow-chaos"));
}

/// The full lifecycle: start on an ephemeral port, shut down over the
/// wire, exit 0 after a clean drain.
#[test]
fn serve_wire_shutdown_exits_zero() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cc-serve"))
        .args(["--addr", "127.0.0.1:0", "--drain-ms", "2000"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("cc-serve starts");
    let stdout = child.stdout.take().expect("stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines.next().expect("banner").expect("read banner");
    let addr = banner
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    writeln!(stream, "{}", r#"{"v":1,"id":1,"op":"shutdown"}"#).expect("send");
    let mut reply = String::new();
    BufReader::new(stream.try_clone().expect("clone"))
        .read_line(&mut reply)
        .expect("reply");
    assert!(
        reply.contains("\"ok\"") || reply.contains("draining"),
        "{reply}"
    );

    let status = child.wait().expect("exits");
    assert_eq!(status.code(), Some(0), "clean drain exits 0");
}

#[test]
fn chaos_unknown_flag_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_cc-serve-chaos"))
        .arg("--explode")
        .output()
        .expect("cc-serve-chaos runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn chaos_help_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_cc-serve-chaos"))
        .arg("--help")
        .output()
        .expect("cc-serve-chaos runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("--soak"));
}

/// One quick seed through the real harness: the contract holds → exit 0.
#[test]
fn chaos_single_seed_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_cc-serve-chaos"))
        .args(["--seeds", "1", "--faults", "6"])
        .output()
        .expect("cc-serve-chaos runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr:\n{stderr}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("all contracts held"));
}
