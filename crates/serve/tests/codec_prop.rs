//! Property tests for the wire codec: the framer and parser are *total*
//! (no byte sequence may panic them — the same contract as the cc-lint
//! parser), and canonical encoding round-trips exactly.

use cc_serve::json::Json;
use cc_serve::proto::{ErrorKind, Op, Reply, Request};
use proptest::prelude::*;

/// A seeded generator of arbitrary canonical [`Json`] values.
///
/// "Canonical" means a value [`Json::encode`] can emit: finite floats
/// (NaN/Inf encode as `null`, which would not round-trip) and `Uint` for
/// non-negative integers (`Int` is reserved for negatives, matching the
/// parser's choice).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn gen_json(state: &mut u64, depth: u32) -> Json {
    let pick = if depth == 0 {
        mix(state) % 5
    } else {
        mix(state) % 7
    };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(mix(state) % 2 == 0),
        2 => Json::Uint(mix(state)),
        3 => Json::Int(-((mix(state) % (1 << 62)) as i64) - 1),
        4 => {
            // A printable-ish string with embedded escapes and unicode.
            let len = mix(state) % 12;
            let s: String = (0..len)
                .map(|_| match mix(state) % 8 {
                    0 => '"',
                    1 => '\\',
                    2 => '\n',
                    3 => '\u{1F}',
                    4 => 'é',
                    5 => '界',
                    _ => (b'a' + (mix(state) % 26) as u8) as char,
                })
                .collect();
            Json::Str(s)
        }
        5 => {
            let len = (mix(state) % 4) as usize;
            Json::Arr((0..len).map(|_| gen_json(state, depth - 1)).collect())
        }
        _ => {
            let len = (mix(state) % 4) as usize;
            let mut m = std::collections::BTreeMap::new();
            for _ in 0..len {
                let klen = 1 + mix(state) % 6;
                let k: String = (0..klen)
                    .map(|_| (b'a' + (mix(state) % 26) as u8) as char)
                    .collect();
                m.insert(k, gen_json(state, depth - 1));
            }
            Json::Obj(m)
        }
    }
}

proptest! {
    /// The parser is total over arbitrary bytes-as-text: no input may
    /// panic it, only return a value or a positioned error.
    #[test]
    fn parser_never_panics_on_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let soup = String::from_utf8_lossy(&bytes);
        let _ = Json::parse(&soup);
    }

    /// The parser is total over *almost-JSON* token soup, which reaches
    /// deeper into nesting/escape recovery than uniform noise.
    #[test]
    fn parser_never_panics_on_json_soup(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "{", "}", "[", "]", ":", ",", "\"", "\\", "null", "true",
                "false", "1", "-", "0.5", "1e9", "1e", "\"v\"", "\"id\"",
                "\\u00", "\\uD800", "{\"", "}}", "  ", "\u{7}",
            ]),
            0..60,
        )
    ) {
        let soup: String = tokens.concat();
        let _ = Json::parse(&soup);
    }

    /// The frame decoder is total too, and never panics regardless of
    /// what the parser hands back.
    #[test]
    fn request_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let soup = String::from_utf8_lossy(&bytes);
        let _ = Request::decode(&soup);
        let _ = Reply::decode(&soup);
    }

    /// Canonical values survive encode → parse exactly, and the encoding
    /// is a fixpoint (encode ∘ parse ∘ encode = encode), which is what
    /// "byte-stable" means on the wire.
    #[test]
    fn canonical_json_round_trips(seed in any::<u64>()) {
        let mut state = seed;
        let value = gen_json(&mut state, 3);
        let bytes = value.encode();
        let reparsed = Json::parse(&bytes).expect("canonical encoding parses");
        prop_assert_eq!(&reparsed, &value);
        prop_assert_eq!(reparsed.encode(), bytes);
    }

    /// Request frames round-trip through the codec: id, op, deadline and
    /// (non-reserved) params all survive.
    #[test]
    fn request_round_trips(seed in any::<u64>(), id in any::<u64>(), dl in any::<bool>()) {
        let ops = [Op::Simulate, Op::Audit, Op::Lint, Op::Morph, Op::Health, Op::Shutdown];
        let op = ops[(seed % 6) as usize];
        let mut state = seed;
        let mut params = std::collections::BTreeMap::new();
        params.insert("keys".to_string(), gen_json(&mut state, 1));
        params.insert("zz".to_string(), gen_json(&mut state, 2));
        let req = Request {
            id,
            op,
            deadline_ms: dl.then_some(seed % 100_000),
            params: Json::Obj(params),
        };
        let decoded = Request::decode(&req.encode()).expect("canonical frame decodes");
        prop_assert_eq!(decoded, req);
    }

    /// Reply frames round-trip, both success and every typed error kind
    /// (with and without a retry hint).
    #[test]
    fn reply_round_trips(seed in any::<u64>(), id in any::<u64>()) {
        let mut state = seed;
        let ok = Reply::ok(id, Op::Simulate, gen_json(&mut state, 2));
        prop_assert_eq!(Reply::decode(&ok.encode()), Some(ok));

        let kind = ErrorKind::ALL[(seed % ErrorKind::ALL.len() as u64) as usize];
        let err = if seed % 2 == 0 {
            Reply::err(id, kind, format!("m{seed}"))
        } else {
            Reply::err_retry(id, kind, format!("m{seed}"), seed % 10_000)
        };
        prop_assert_eq!(Reply::decode(&err.encode()), Some(err));
    }
}
