//! Per-request-class circuit breaker.
//!
//! A worker panic is absorbed by `catch_unwind` and degrades one session
//! — but a request class that panics *repeatedly* (a poisoned code path,
//! not a poisoned request) would burn a worker slot per attempt and
//! degrade every session that touches it. The breaker quarantines the
//! class after `threshold` consecutive panics: requests are refused with
//! a typed `breaker_open` reply (plus retry-after) without ever reaching
//! a worker, and after `cooldown` one probe request is let through —
//! success closes the breaker, another panic re-opens it.
//!
//! Time is injected as plain milliseconds so tests and the chaos harness
//! can drive the state machine deterministically.

use crate::proto::Op;
use std::collections::HashMap;
use std::sync::Mutex;

/// Breaker tuning.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive worker panics that trip the class.
    pub threshold: u32,
    /// Quarantine length in milliseconds.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            cooldown_ms: 1_000,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum State {
    /// Healthy; counts consecutive failures.
    Closed { fails: u32 },
    /// Quarantined until the given time.
    Open { until_ms: u64 },
    /// One probe in flight; further requests are refused until it
    /// reports.
    Probing,
}

/// The admission decision for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admit {
    /// Run it.
    Yes,
    /// Class quarantined; retry after the given hint.
    Quarantined {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
}

/// The breaker: one state machine per worker-served [`Op`].
pub struct Breaker {
    cfg: BreakerConfig,
    classes: Mutex<HashMap<Op, State>>,
    trips: Mutex<u64>,
}

impl Breaker {
    /// A breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        Breaker {
            cfg,
            classes: Mutex::new(HashMap::new()),
            trips: Mutex::new(0),
        }
    }

    /// Decides whether a request of class `op` may run at `now_ms`.
    /// A `Yes` from an open-but-cooled class claims the probe slot; the
    /// caller must follow up with [`Breaker::record`].
    pub fn admit(&self, op: Op, now_ms: u64) -> Admit {
        let mut classes = self.classes.lock().unwrap_or_else(|p| p.into_inner());
        let state = classes.entry(op).or_insert(State::Closed { fails: 0 });
        match *state {
            State::Closed { .. } => Admit::Yes,
            State::Open { until_ms } if now_ms >= until_ms => {
                *state = State::Probing;
                Admit::Yes
            }
            State::Open { until_ms } => Admit::Quarantined {
                retry_after_ms: (until_ms - now_ms).max(1),
            },
            State::Probing => Admit::Quarantined {
                retry_after_ms: self.cfg.cooldown_ms.max(1),
            },
        }
    }

    /// Reports the outcome of an admitted request at `now_ms`.
    pub fn record(&self, op: Op, ok: bool, now_ms: u64) {
        let mut classes = self.classes.lock().unwrap_or_else(|p| p.into_inner());
        let state = classes.entry(op).or_insert(State::Closed { fails: 0 });
        *state = match (*state, ok) {
            (State::Closed { .. }, true) => State::Closed { fails: 0 },
            (State::Closed { fails }, false) => {
                if fails + 1 >= self.cfg.threshold {
                    *self.trips.lock().unwrap_or_else(|p| p.into_inner()) += 1;
                    State::Open {
                        until_ms: now_ms + self.cfg.cooldown_ms,
                    }
                } else {
                    State::Closed { fails: fails + 1 }
                }
            }
            (State::Probing, true) => State::Closed { fails: 0 },
            (State::Probing, false) => {
                *self.trips.lock().unwrap_or_else(|p| p.into_inner()) += 1;
                State::Open {
                    until_ms: now_ms + self.cfg.cooldown_ms,
                }
            }
            // A stale report against an Open class (e.g. a long request
            // admitted before the trip): keep the quarantine.
            (open @ State::Open { .. }, _) => open,
        };
    }

    /// Total trips (closed/probing → open transitions) so far.
    pub fn trips(&self) -> u64 {
        *self.trips.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Whether `op` is currently quarantined at `now_ms` (no probe-slot
    /// side effect; for health reporting).
    pub fn is_open(&self, op: Op, now_ms: u64) -> bool {
        let classes = self.classes.lock().unwrap_or_else(|p| p.into_inner());
        match classes.get(&op) {
            Some(State::Open { until_ms }) => now_ms < *until_ms,
            Some(State::Probing) => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> Breaker {
        Breaker::new(BreakerConfig {
            threshold: 3,
            cooldown_ms: 100,
        })
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = breaker();
        b.record(Op::Simulate, false, 0);
        b.record(Op::Simulate, false, 1);
        assert_eq!(b.admit(Op::Simulate, 2), Admit::Yes);
        b.record(Op::Simulate, false, 2);
        assert_eq!(
            b.admit(Op::Simulate, 3),
            Admit::Quarantined { retry_after_ms: 99 }
        );
        assert_eq!(b.trips(), 1);
        // Other classes are unaffected.
        assert_eq!(b.admit(Op::Lint, 3), Admit::Yes);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let b = breaker();
        b.record(Op::Morph, false, 0);
        b.record(Op::Morph, false, 0);
        b.record(Op::Morph, true, 0);
        b.record(Op::Morph, false, 0);
        b.record(Op::Morph, false, 0);
        assert_eq!(b.admit(Op::Morph, 0), Admit::Yes);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn cooldown_admits_one_probe_then_closes_on_success() {
        let b = breaker();
        for _ in 0..3 {
            b.record(Op::Audit, false, 0);
        }
        assert!(matches!(b.admit(Op::Audit, 50), Admit::Quarantined { .. }));
        // Cooled: exactly one probe gets through.
        assert_eq!(b.admit(Op::Audit, 100), Admit::Yes);
        assert!(matches!(b.admit(Op::Audit, 100), Admit::Quarantined { .. }));
        b.record(Op::Audit, true, 101);
        assert_eq!(b.admit(Op::Audit, 101), Admit::Yes);
        assert!(!b.is_open(Op::Audit, 101));
    }

    #[test]
    fn failed_probe_reopens() {
        let b = breaker();
        for _ in 0..3 {
            b.record(Op::Audit, false, 0);
        }
        assert_eq!(b.admit(Op::Audit, 100), Admit::Yes);
        b.record(Op::Audit, false, 100);
        assert!(b.is_open(Op::Audit, 150));
        assert_eq!(b.trips(), 2);
        // And cools down again.
        assert_eq!(b.admit(Op::Audit, 200), Admit::Yes);
    }
}
