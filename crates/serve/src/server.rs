//! The cc-serve server: acceptor, sessions, worker pool, and drain.
//!
//! Thread model (all `std`, no async runtime):
//!
//! * **Acceptor** — one thread polling a non-blocking listener; each
//!   accepted connection becomes a *session* thread. A session cap
//!   sheds excess connections with a typed `overloaded` reply rather
//!   than letting accepts pile up unbounded.
//! * **Sessions** — one thread per connection: frame the byte stream
//!   (length-capped, slow-loris guarded), parse/validate, answer
//!   `health`/`shutdown` inline, and push worker ops through the bounded
//!   admission queue. One request in flight per session: a session's
//!   replies are always in request order, and backpressure composes
//!   (queue depth is bounded by live sessions, which are bounded by the
//!   session cap).
//! * **Workers** — a fixed pool popping the queue. Every op body runs
//!   under `catch_unwind` (the sweep-cell contract): a panic degrades
//!   exactly one session's request into a typed `degraded` reply,
//!   feeds the circuit breaker, and never unwinds past the worker loop.
//! * **Drain** — [`Server::drain`] stops the acceptor, closes the queue,
//!   lets in-flight work finish or deadline out, cancels cooperatively
//!   when the drain deadline passes, then flushes metrics. The outcome
//!   reports whether anything had to be abandoned — the chaos harness
//!   fails on a hung drain.

use crate::breaker::{Admit, Breaker, BreakerConfig};
use crate::json::Json;
use crate::metrics::ServeMetrics;
use crate::ops::{self, Gate, OpEnv, ServeLimits, SessionCtx};
use crate::proto::{ErrorKind, Op, Reply, Request, MAX_FRAME_BYTES};
use crate::queue::{Bounded, PushError};
use cc_sweep::TraceStore;
use std::io::{ErrorKind as IoKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning. `Default` is sized for tests and the chaos harness;
/// the binary exposes the knobs as flags.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker pool size.
    pub workers: usize,
    /// Admission queue capacity.
    pub queue_cap: usize,
    /// Maximum concurrent sessions.
    pub max_sessions: usize,
    /// Default per-request deadline when the frame names none.
    pub default_deadline_ms: u64,
    /// Hard cap on client-requested deadlines.
    pub max_deadline_ms: u64,
    /// How long a partially-read frame may stall before the session is
    /// closed as a slow-loris client.
    pub read_stall_ms: u64,
    /// Drain: how long in-flight work may keep running after shutdown
    /// begins before it is cooperatively cancelled.
    pub drain_deadline_ms: u64,
    /// Base retry-after hint on `overloaded` replies.
    pub retry_after_ms: u64,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Op admission limits.
    pub limits: ServeLimits,
    /// Honor `chaos_*` request parameters (harness/tests only).
    pub allow_chaos: bool,
    /// Write the final metrics snapshot here on drain.
    pub metrics_out: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 16,
            max_sessions: 64,
            default_deadline_ms: 10_000,
            max_deadline_ms: 60_000,
            read_stall_ms: 2_000,
            drain_deadline_ms: 5_000,
            retry_after_ms: 25,
            breaker: BreakerConfig::default(),
            limits: ServeLimits::default(),
            allow_chaos: false,
            metrics_out: None,
        }
    }
}

/// One queued unit of worker work.
struct Job {
    req: Request,
    session: Arc<SessionCtx>,
    gate: Gate,
    reply_tx: mpsc::Sender<Reply>,
}

/// State shared by every thread.
struct Shared {
    cfg: ServeConfig,
    metrics: ServeMetrics,
    store: TraceStore,
    queue: Bounded<Job>,
    breaker: Breaker,
    draining: AtomicBool,
    /// Set when drain gives up on in-flight work (gates observe it).
    cancel: Arc<AtomicBool>,
    /// Millisecond clock for the breaker.
    epoch: Instant,
    active_sessions: AtomicUsize,
    /// Signalled when a `shutdown` request arrives.
    shutdown: (Mutex<bool>, Condvar),
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn error_reply(&self, id: u64, kind: ErrorKind, msg: impl Into<String>) -> Reply {
        self.metrics.count_error(kind);
        Reply::err(id, kind, msg)
    }
}

/// What drain observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DrainOutcome {
    /// Everything wound down before the drain deadline.
    pub clean: bool,
    /// In-flight requests cancelled cooperatively.
    pub cancelled: u64,
    /// Worker threads that never exited (a hung drain — chaos fails).
    pub hung_workers: usize,
    /// Session threads that never exited.
    pub hung_sessions: usize,
}

/// A running server.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds and spawns the acceptor and worker pool. Fails only on
    /// bind errors.
    pub fn spawn(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Bounded::new(cfg.queue_cap),
            breaker: Breaker::new(cfg.breaker),
            metrics: ServeMetrics::new(),
            store: TraceStore::from_env(),
            draining: AtomicBool::new(false),
            cancel: Arc::new(AtomicBool::new(false)),
            epoch: Instant::now(),
            active_sessions: AtomicUsize::new(0),
            shutdown: (Mutex::new(false), Condvar::new()),
            cfg,
        });

        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let sessions = Arc::clone(&sessions);
            std::thread::Builder::new()
                .name("cc-serve-acceptor".into())
                .spawn(move || acceptor_loop(listener, &shared, &sessions))
                .expect("spawn acceptor")
        };

        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
            sessions,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics surface.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// Blocks until a `shutdown` request arrives.
    pub fn wait_for_shutdown(&self) {
        let (lock, cv) = &self.shared.shutdown;
        let mut flag = lock.lock().unwrap_or_else(|p| p.into_inner());
        while !*flag {
            flag = cv
                .wait_timeout(flag, Duration::from_millis(200))
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
    }

    /// Graceful drain: stop accepting, let in-flight work finish or
    /// deadline out, cancel stragglers at the drain deadline, flush
    /// metrics. Consumes the server.
    pub fn drain(mut self) -> DrainOutcome {
        let shared = &self.shared;
        shared.draining.store(true, Ordering::SeqCst);
        shared.queue.close();
        let deadline = Instant::now() + Duration::from_millis(shared.cfg.drain_deadline_ms);

        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }

        // Phase 1: wait for workers to drain the backlog politely.
        let mut workers = std::mem::take(&mut self.workers);
        let mut hung_workers = 0;
        let mut cancelled_at: Option<Instant> = None;
        while !workers.is_empty() {
            workers.retain(|h| !h.is_finished());
            if workers.is_empty() {
                break;
            }
            if Instant::now() >= deadline && cancelled_at.is_none() {
                // Phase 2: the deadline passed — cancel cooperatively.
                shared.cancel.store(true, Ordering::SeqCst);
                cancelled_at = Some(Instant::now());
            }
            if let Some(at) = cancelled_at {
                // Grace period for the cancellation to be observed; a
                // worker still alive after it is truly hung.
                if at.elapsed() > Duration::from_secs(10) {
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        for h in workers {
            if h.is_finished() {
                let _ = h.join();
            } else {
                hung_workers += 1;
            }
        }

        // Phase 3: sessions see `draining` on their next read tick and
        // exit once their in-flight reply (if any) has been written.
        let session_deadline = Instant::now() + Duration::from_secs(10);
        let mut hung_sessions = 0;
        let handles = {
            let mut guard = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *guard)
        };
        let mut handles: Vec<JoinHandle<()>> = handles;
        while !handles.is_empty() && Instant::now() < session_deadline {
            handles.retain(|h| !h.is_finished());
            if handles.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        for h in handles {
            if h.is_finished() {
                let _ = h.join();
            } else {
                hung_sessions += 1;
            }
        }

        // Flush: fold store counters in, write the snapshot, summarize.
        let mut reg = cc_obs::MetricsRegistry::new();
        cc_sweep::obs::export_store(&mut reg, "serve.trace_store", &shared.store.counters());
        shared.metrics.absorb(&reg);
        shared
            .metrics
            .set("serve.queue.peak", shared.queue.peak() as u64);
        let cancelled = shared.metrics.get("serve.drain.cancelled");
        if let Some(path) = &shared.cfg.metrics_out {
            if let Err(e) = std::fs::write(path, shared.metrics.to_json() + "\n") {
                eprintln!(
                    "cc-serve: failed to write metrics to {}: {e}",
                    path.display()
                );
            }
        }
        let outcome = DrainOutcome {
            clean: hung_workers == 0 && hung_sessions == 0,
            cancelled,
            hung_workers,
            hung_sessions,
        };
        eprintln!(
            "cc-serve: drained (clean={}, cancelled={}, hung_workers={}, hung_sessions={})",
            outcome.clean, outcome.cancelled, outcome.hung_workers, outcome.hung_sessions
        );
        outcome
    }
}

fn acceptor_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    sessions: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_id = 0u64;
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                next_id += 1;
                let sid = next_id;
                if shared.active_sessions.load(Ordering::SeqCst) >= shared.cfg.max_sessions {
                    // Session-level load shedding: answer the typed
                    // error eagerly and close.
                    shared.metrics.bump("serve.queue.sheds", 1);
                    let reply = shared.error_reply(
                        0,
                        ErrorKind::Overloaded,
                        format!(
                            "session limit ({}) reached; retry after backoff",
                            shared.cfg.max_sessions
                        ),
                    );
                    let mut stream = stream;
                    let _ = writeln!(
                        stream,
                        "{}",
                        Reply {
                            id: 0,
                            body: {
                                let mut b = reply.body;
                                if let Err(e) = &mut b {
                                    e.retry_after_ms = Some(shared.cfg.retry_after_ms);
                                }
                                b
                            },
                        }
                        .encode()
                    );
                    continue;
                }
                shared.active_sessions.fetch_add(1, Ordering::SeqCst);
                shared.metrics.bump("serve.sessions.opened", 1);
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name(format!("cc-serve-session-{sid}"))
                    .spawn(move || {
                        session_loop(stream, &shared);
                        shared.active_sessions.fetch_sub(1, Ordering::SeqCst);
                        shared.metrics.bump("serve.sessions.closed", 1);
                    })
                    .expect("spawn session");
                sessions
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(handle);
            }
            Err(e) if e.kind() == IoKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Frames one session's byte stream and shepherds its requests.
fn session_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let session = Arc::new(SessionCtx::default());
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut stalled_since: Option<Instant> = None;
    // When a frame overflows, discard until the next newline instead of
    // letting one runaway line kill the session.
    let mut discarding = false;

    loop {
        // Extract complete lines first.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            stalled_since = None;
            if discarding {
                discarding = false;
                continue;
            }
            let text = String::from_utf8_lossy(&line[..line.len() - 1]);
            let text = text.trim_end_matches('\r');
            if text.is_empty() {
                continue;
            }
            if !handle_frame(&mut stream, shared, &session, text) {
                return;
            }
        }

        if buf.len() > MAX_FRAME_BYTES {
            if !discarding {
                let reply = shared.error_reply(
                    0,
                    ErrorKind::OversizedFrame,
                    format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
                );
                if !write_reply(&mut stream, shared, &reply) {
                    return;
                }
                discarding = true;
            }
            // No newline yet (the line-extraction loop above ran dry), so
            // the whole buffer is runaway frame: drop it and keep
            // discarding until the terminator shows up.
            buf.clear();
        }

        if shared.draining.load(Ordering::SeqCst) && buf.is_empty() {
            return; // polite close between frames
        }

        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                stalled_since = None;
            }
            Err(e) if e.kind() == IoKind::WouldBlock || e.kind() == IoKind::TimedOut => {
                if !buf.is_empty() {
                    // Mid-frame stall: slow-loris guard.
                    let since = *stalled_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= Duration::from_millis(shared.cfg.read_stall_ms) {
                        shared.metrics.bump("serve.sessions.slow_loris", 1);
                        let reply = shared.error_reply(
                            0,
                            ErrorKind::BadFrame,
                            format!(
                                "frame stalled mid-read for {}ms; closing session",
                                shared.cfg.read_stall_ms
                            ),
                        );
                        let _ = write_reply(&mut stream, shared, &reply);
                        return;
                    }
                }
            }
            Err(_) => {
                shared.metrics.bump("serve.sessions.dropped", 1);
                return;
            }
        }
    }
}

/// Handles one complete frame; returns `false` when the session must
/// close (write failure).
fn handle_frame(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    session: &Arc<SessionCtx>,
    line: &str,
) -> bool {
    shared.metrics.bump("serve.requests.total", 1);
    let req = match Request::decode(line) {
        Ok(req) => req,
        Err((kind, id, msg)) => {
            let reply = shared.error_reply(id, kind, msg);
            return write_reply(stream, shared, &reply);
        }
    };
    shared
        .metrics
        .bump(&format!("serve.requests.{}", req.op.wire()), 1);

    // Inline ops: never queued, never refused.
    match req.op {
        Op::Health => {
            let reply = health_reply(shared, &req);
            return write_reply(stream, shared, &reply);
        }
        Op::Shutdown => {
            let reply = Reply::ok(
                req.id,
                Op::Shutdown,
                Json::obj([("draining", Json::Bool(true))]),
            );
            let ok = write_reply(stream, shared, &reply);
            let (lock, cv) = &shared.shutdown;
            *lock.lock().unwrap_or_else(|p| p.into_inner()) = true;
            cv.notify_all();
            return ok;
        }
        _ => {}
    }

    if shared.draining.load(Ordering::SeqCst) {
        let reply = shared.error_reply(
            req.id,
            ErrorKind::ShuttingDown,
            "server is draining; no new work accepted",
        );
        return write_reply(stream, shared, &reply);
    }

    // Deadline: client ask, capped; default otherwise.
    let deadline_ms = req
        .deadline_ms
        .unwrap_or(shared.cfg.default_deadline_ms)
        .min(shared.cfg.max_deadline_ms);
    let gate = Gate {
        deadline: Instant::now() + Duration::from_millis(deadline_ms),
        cancel: Arc::clone(&shared.cancel),
    };

    let (reply_tx, reply_rx) = mpsc::channel();
    let id = req.id;
    let job = Job {
        req,
        session: Arc::clone(session),
        gate,
        reply_tx,
    };
    match shared.queue.push(job) {
        Ok(()) => {}
        Err(PushError::Full) => {
            shared.metrics.bump("serve.queue.sheds", 1);
            shared.metrics.count_error(ErrorKind::Overloaded);
            // Retry hint scales with how far over capacity we are
            // relative to the worker pool, so a deeper overload backs
            // clients off harder.
            let hint = shared.cfg.retry_after_ms
                * (1 + shared.queue.depth() as u64 / shared.cfg.workers.max(1) as u64);
            let reply = Reply::err_retry(
                id,
                ErrorKind::Overloaded,
                format!(
                    "admission queue full ({} pending); retry after the hint",
                    shared.queue.capacity()
                ),
                hint,
            );
            return write_reply(stream, shared, &reply);
        }
        Err(PushError::Closed) => {
            let reply = shared.error_reply(
                id,
                ErrorKind::ShuttingDown,
                "server is draining; no new work accepted",
            );
            return write_reply(stream, shared, &reply);
        }
    }

    // One request in flight per session: wait for the worker's reply.
    // The timeout is belt-and-braces — workers always reply, even for
    // cancelled or panicked jobs.
    let wait = Duration::from_millis(deadline_ms + shared.cfg.drain_deadline_ms + 15_000);
    let reply = reply_rx.recv_timeout(wait).unwrap_or_else(|_| {
        shared.error_reply(
            id,
            ErrorKind::Degraded,
            "worker reply channel closed unexpectedly",
        )
    });
    write_reply(stream, shared, &reply)
}

fn write_reply(stream: &mut TcpStream, shared: &Arc<Shared>, reply: &Reply) -> bool {
    if writeln!(stream, "{}", reply.encode()).is_err() {
        shared.metrics.bump("serve.sessions.dropped", 1);
        return false;
    }
    true
}

fn health_reply(shared: &Arc<Shared>, req: &Request) -> Reply {
    let now = shared.now_ms();
    let breaker_open: Vec<Json> = Op::WORKER_CLASSES
        .iter()
        .filter(|&&op| shared.breaker.is_open(op, now))
        .map(|op| Json::str(op.wire()))
        .collect();
    let c = shared.store.counters();
    Reply::ok(
        req.id,
        Op::Health,
        Json::obj([
            ("queue_depth", Json::Uint(shared.queue.depth() as u64)),
            ("queue_capacity", Json::Uint(shared.queue.capacity() as u64)),
            (
                "active_sessions",
                Json::Uint(shared.active_sessions.load(Ordering::SeqCst) as u64),
            ),
            (
                "draining",
                Json::Bool(shared.draining.load(Ordering::SeqCst)),
            ),
            ("breaker_open", Json::Arr(breaker_open)),
            ("breaker_trips", Json::Uint(shared.breaker.trips())),
            (
                "store",
                Json::obj([
                    ("hits", Json::Uint(c.hits)),
                    ("misses", Json::Uint(c.misses)),
                    ("generations", Json::Uint(c.generations)),
                    ("evictions", Json::Uint(c.evictions)),
                    (
                        "resident_bytes",
                        Json::Uint(shared.store.resident_bytes() as u64),
                    ),
                ]),
            ),
            ("metrics", Json::Str(shared.metrics.to_json())),
        ]),
    )
}

/// The worker loop: pop, admit, execute under `catch_unwind`, reply.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let reply = serve_job(shared, &job);
        // A dead session (dropped receiver) is fine; the reply is lost
        // with the connection.
        let _ = job.reply_tx.send(reply);
    }
}

fn serve_job(shared: &Arc<Shared>, job: &Job) -> Reply {
    let op = job.req.op;
    let id = job.req.id;

    // Queued past its deadline? Timed out while waiting is still a
    // deadline error — the client's clock doesn't care where the time
    // went.
    if let Err((kind, msg)) = job.gate.check() {
        if kind == ErrorKind::DeadlineExceeded {
            shared.metrics.bump("serve.deadline.timeouts", 1);
            if job.gate.cancel.load(Ordering::Relaxed) {
                shared.metrics.bump("serve.drain.cancelled", 1);
            }
        }
        return shared.error_reply(id, kind, msg);
    }

    // Circuit breaker: refuse quarantined classes without burning a
    // worker slot.
    match shared.breaker.admit(op, shared.now_ms()) {
        Admit::Yes => {}
        Admit::Quarantined { retry_after_ms } => {
            shared.metrics.bump("serve.breaker.rejected", 1);
            shared.metrics.count_error(ErrorKind::BreakerOpen);
            return Reply::err_retry(
                id,
                ErrorKind::BreakerOpen,
                format!(
                    "`{}` is quarantined after repeated worker panics; retry after the hint",
                    op.wire()
                ),
                retry_after_ms,
            );
        }
    }

    let trips_before = shared.breaker.trips();
    let quota_bypass = || {
        shared.metrics.bump("serve.store.quota_bypasses", 1);
    };
    let env = OpEnv {
        store: &shared.store,
        limits: &shared.cfg.limits,
        session: &job.session,
        gate: &job.gate,
        allow_chaos: shared.cfg.allow_chaos,
        quota_bypass: &quota_bypass,
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| match op {
        Op::Simulate => ops::simulate(&env, &job.req.params),
        Op::Audit => ops::audit(&env, &job.req.params),
        Op::Lint => ops::lint(&env, &job.req.params),
        Op::Morph => ops::morph(&env, &job.req.params),
        // Inline ops never reach the queue.
        Op::Health | Op::Shutdown => Err((
            ErrorKind::BadRequest,
            "internal: inline op routed to worker".into(),
        )),
    }));

    match outcome {
        Ok(Ok(result)) => {
            shared.breaker.record(op, true, shared.now_ms());
            shared.metrics.bump("serve.replies.ok", 1);
            Reply::ok(id, op, result)
        }
        Ok(Err((kind, msg))) => {
            // Typed refusals are not class failures: the op code ran to
            // a controlled exit.
            shared.breaker.record(op, true, shared.now_ms());
            if kind == ErrorKind::DeadlineExceeded {
                shared.metrics.bump("serve.deadline.timeouts", 1);
                if job.gate.cancel.load(Ordering::Relaxed) {
                    shared.metrics.bump("serve.drain.cancelled", 1);
                }
            }
            shared.error_reply(id, kind, msg)
        }
        Err(panic) => {
            // The sweep-cell contract at the server tier: the panic is
            // contained, the session is degraded, the breaker learns.
            shared.breaker.record(op, false, shared.now_ms());
            if shared.breaker.trips() > trips_before {
                shared.metrics.bump("serve.breaker.trips", 1);
            }
            job.session
                .degraded_requests
                .fetch_add(1, Ordering::Relaxed);
            shared.metrics.bump("serve.sessions.degraded", 1);
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            shared.error_reply(
                id,
                ErrorKind::Degraded,
                format!("worker panicked serving `{}`: {msg}", op.wire()),
            )
        }
    }
}
