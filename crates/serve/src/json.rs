//! A total, dependency-free JSON codec for the wire protocol.
//!
//! The workspace has no serde; `cc-lint` already carries a JSON-subset
//! reader for flat weight maps, but the serve protocol needs full values
//! (nested objects for error payloads, arrays for batch parameters), so
//! this module is a small general-purpose tree codec with the same
//! contract as the lint parser: **total** — no input, valid or garbage,
//! may panic it. Errors carry a byte position so `bad_frame` replies can
//! point at the offending byte.
//!
//! Serialization is byte-stable: object keys are kept in a [`BTreeMap`],
//! so two structurally equal values always encode to the same bytes —
//! the property every report format in this workspace (cc-audit,
//! cc-lint, cc-obs) already guarantees, extended to the wire.
//!
//! Numbers preserve integer exactness: `u64` and negative `i64` values
//! round-trip bit-exactly (seeds and trace keys are full 64-bit), and
//! only genuinely fractional numbers fall back to `f64`.

use std::collections::BTreeMap;

/// Nesting depth cap: a frame deeper than this is rejected rather than
/// recursed into (the framer already caps byte length; this caps stack).
const MAX_DEPTH: usize = 32;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common protocol case: ids, sizes,
    /// seeds). Preserved exactly up to `u64::MAX`.
    Uint(u64),
    /// A negative integer, preserved exactly down to `i64::MIN`.
    Int(i64),
    /// Any other number (fractional or exponent form).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps encoding byte-stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Uint(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Byte-stable encoding: keys sorted (by the map), no whitespace,
    /// integers exact, floats in Rust's shortest round-trip form.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Uint(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    let s = v.to_string();
                    out.push_str(&s);
                    // `5f64.to_string()` is "5": keep a float marker so
                    // the value re-parses as the same variant.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no NaN/Inf; degrade to null, never panic.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one complete JSON value; trailing non-whitespace is an
    /// error. Total: never panics, whatever the bytes.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value(0)?;
        p.ws();
        if p.i != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }
}

/// A parse failure: message plus byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input where it went wrong.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.i,
        }
    }

    fn ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.i) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), JsonError> {
        if self.bytes[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.expect_word("null").map(|_| Json::Null),
            Some(b't') => self.expect_word("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.expect_word("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.i += 1; // [
        let mut items = Vec::new();
        self.ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value(depth + 1)?);
            self.ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `]`"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.i += 1; // {
        let mut map = BTreeMap::new();
        self.ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(map));
        }
        loop {
            self.ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:`"));
            }
            self.ws();
            let val = self.value(depth + 1)?;
            // Duplicate keys: last wins, like every lenient reader; the
            // encoder can never produce them.
            map.insert(key, val);
            self.ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(map));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `}`"));
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.i += 1; // opening quote
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u`-escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid code point")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar, not one byte: the input
                    // is a &str, so char boundaries are trustworthy.
                    let rest = &self.bytes[self.i..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("bad hex digit")),
            };
            v = v * 16 + d;
            self.i += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        let neg = self.eat(b'-');
        let mut saw_digit = false;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            saw_digit = true;
            self.i += 1;
        }
        if !saw_digit {
            return Err(self.err("expected digits"));
        }
        let mut integral = true;
        if self.eat(b'.') {
            integral = false;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
        }
        // The slice is ASCII digits/signs by construction.
        let text = std::str::from_utf8(&self.bytes[start..self.i])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if neg {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(if v == 0 { Json::Uint(0) } else { Json::Int(v) });
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Uint(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Float(v)),
            _ => Err(self.err("number out of range")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(src: &str) -> Json {
        Json::parse(src).expect(src)
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(rt("null"), Json::Null);
        assert_eq!(rt("true"), Json::Bool(true));
        assert_eq!(rt("0"), Json::Uint(0));
        assert_eq!(rt("-0"), Json::Uint(0));
        assert_eq!(rt("18446744073709551615"), Json::Uint(u64::MAX));
        assert_eq!(rt("-42"), Json::Int(-42));
        assert_eq!(rt("1.5"), Json::Float(1.5));
        assert_eq!(rt("1e3"), Json::Float(1000.0));
        assert_eq!(rt("\"a\\nb\\u00e9\""), Json::Str("a\nbé".into()));
    }

    #[test]
    fn u64_exactness_survives_encode_parse() {
        for v in [0, 1, u64::MAX, 0xCC15_FA00, (1 << 53) + 1] {
            let enc = Json::Uint(v).encode();
            assert_eq!(rt(&enc), Json::Uint(v), "{v}");
        }
    }

    #[test]
    fn encoding_is_sorted_and_stable() {
        let a = rt("{\"z\":1,\"a\":{\"y\":[1,2],\"b\":null}}");
        assert_eq!(a.encode(), "{\"a\":{\"b\":null,\"y\":[1,2]},\"z\":1}");
        assert_eq!(rt(&a.encode()), a);
    }

    #[test]
    fn floats_keep_their_variant() {
        let v = Json::Float(5.0);
        assert_eq!(v.encode(), "5.0");
        assert_eq!(rt("5.0"), v);
        assert_eq!(Json::Float(f64::NAN).encode(), "null");
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        for src in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "\"",
            "\\",
            "01x",
            "nul",
            "+1",
            "1.",
            "1e",
            "--2",
            "{\"a\":}",
            "[,]",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\u{7f}",
        ] {
            assert!(Json::parse(src).is_err(), "{src:?}");
        }
    }

    #[test]
    fn depth_is_capped() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(Json::parse(&ok).is_ok());
    }
}
