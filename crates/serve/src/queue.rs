//! The bounded admission queue: backpressure with typed load-shedding.
//!
//! Sessions push parsed requests here; a fixed worker pool pops them.
//! The queue never blocks a producer — a push against a full queue fails
//! immediately so the session can answer `overloaded` with a retry-after
//! hint instead of letting one impatient client's requests pile up and
//! starve everyone's deadlines. Consumers block (that is the point of a
//! worker pool), and `close` wakes them all for drain.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// Queue at capacity: shed the request (`overloaded`).
    Full,
    /// Queue closed for drain (`shutting_down`).
    Closed,
}

struct Inner<T> {
    q: VecDeque<T>,
    closed: bool,
    /// High-water mark since construction (for metrics).
    peak: usize,
}

/// A bounded MPMC queue with non-blocking producers and blocking
/// consumers.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `cap` pending items (floor 1).
    pub fn new(cap: usize) -> Self {
        Bounded {
            inner: Mutex::new(Inner {
                q: VecDeque::new(),
                closed: false,
                peak: 0,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Admission capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Attempts to enqueue; never blocks.
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.q.len() >= self.cap {
            return Err(PushError::Full);
        }
        inner.q.push_back(item);
        inner.peak = inner.peak.max(inner.q.len());
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; `None` means the consumer should exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(item) = inner.q.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait_timeout(inner, Duration::from_millis(100))
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
    }

    /// Closes the queue: pushes fail with [`PushError::Closed`], and
    /// consumers drain the backlog then receive `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).q.len()
    }

    /// High-water mark since construction.
    pub fn peak(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = Bounded::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds_without_blocking() {
        let q = Bounded::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(PushError::Full));
        assert_eq!(q.peak(), 2);
    }

    #[test]
    fn close_drains_backlog_then_stops_consumers() {
        let q = Arc::new(Bounded::new(4));
        q.push(7).unwrap();
        q.close();
        assert_eq!(q.push(8), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q = Arc::new(Bounded::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(1).unwrap();
        assert_eq!(q.push(2), Err(PushError::Full));
    }
}
