//! The cc-serve wire protocol: versioned, line-delimited JSON frames.
//!
//! One request per line, one reply per line, in order, over a plain TCP
//! stream. Every frame is a JSON object with a `v` protocol-version
//! field; replies are byte-stable (sorted keys, exact integers) in the
//! same sense as the cc-audit / cc-lint report formats, so a scripted
//! session can be golden-pinned.
//!
//! # Requests
//!
//! ```json
//! {"v":1,"id":7,"op":"simulate","keys":16383,"searches":40000,"seed":11,"shards":4,"layout":"ctree"}
//! {"v":1,"id":8,"op":"audit","scenario":"ccmorph-tree","n":4095}
//! {"v":1,"id":9,"op":"lint","source":"pub struct S { a: u8, b: u64 }"}
//! {"v":1,"id":10,"op":"morph","keys":4095,"searches":20000,"seed":3}
//! {"v":1,"id":11,"op":"health"}
//! {"v":1,"id":12,"op":"shutdown"}
//! ```
//!
//! `deadline_ms` is accepted on any request; omitted means the server
//! default. A request the server cannot parse at all is answered with a
//! `bad_frame` error carrying `id` 0 (the id was unreadable).
//!
//! # Replies
//!
//! ```json
//! {"id":7,"ok":true,"op":"simulate","result":{...},"v":1}
//! {"error":{"kind":"overloaded","message":"...","retry_after_ms":25},"id":8,"ok":false,"v":1}
//! ```
//!
//! # Degradation taxonomy
//!
//! Every failure mode has exactly one [`ErrorKind`]; the server bumps the
//! matching `serve.errors.<kind>` counter for each error reply, so the
//! metrics snapshot and the wire agree about what went wrong and how
//! often. See DESIGN.md §14 for the full taxonomy table.

use crate::json::Json;

/// Protocol version spoken by this build.
pub const PROTO_VERSION: u64 = 1;

/// Hard cap on one frame's byte length (newline included). A frame
/// longer than this is answered with `oversized_frame` and discarded;
/// the session survives.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// The typed failure taxonomy. Wire strings are stable API.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// The line was not a parseable protocol frame (bad JSON, not an
    /// object, missing/wrong `v`, stalled mid-frame read).
    BadFrame,
    /// The line exceeded [`MAX_FRAME_BYTES`].
    OversizedFrame,
    /// A well-formed frame with an unknown op or invalid parameters.
    BadRequest,
    /// The workload exceeds the full-replay budget. The reply points at
    /// the sampled-simulation roadmap item instead of starving other
    /// sessions.
    OverBudget,
    /// The admission queue was full; reply carries `retry_after_ms`.
    Overloaded,
    /// The request missed its deadline (queued too long, or cancelled
    /// cooperatively mid-replay).
    DeadlineExceeded,
    /// A worker panicked serving this session's request; the session is
    /// degraded, the process is fine.
    Degraded,
    /// The circuit breaker has this request class quarantined; reply
    /// carries `retry_after_ms`.
    BreakerOpen,
    /// The server is draining and accepts no new work.
    ShuttingDown,
}

impl ErrorKind {
    /// The stable wire string (also the metrics-key suffix).
    pub fn wire(self) -> &'static str {
        match self {
            ErrorKind::BadFrame => "bad_frame",
            ErrorKind::OversizedFrame => "oversized_frame",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::OverBudget => "over_budget",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline",
            ErrorKind::Degraded => "degraded",
            ErrorKind::BreakerOpen => "breaker_open",
            ErrorKind::ShuttingDown => "shutting_down",
        }
    }

    /// Parses a wire string back to the kind (client side).
    pub fn from_wire(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "bad_frame" => ErrorKind::BadFrame,
            "oversized_frame" => ErrorKind::OversizedFrame,
            "bad_request" => ErrorKind::BadRequest,
            "over_budget" => ErrorKind::OverBudget,
            "overloaded" => ErrorKind::Overloaded,
            "deadline" => ErrorKind::DeadlineExceeded,
            "degraded" => ErrorKind::Degraded,
            "breaker_open" => ErrorKind::BreakerOpen,
            "shutting_down" => ErrorKind::ShuttingDown,
            _ => return None,
        })
    }

    /// Whether a client should retry the same request after a pause.
    pub fn retryable(self) -> bool {
        matches!(self, ErrorKind::Overloaded | ErrorKind::BreakerOpen)
    }

    /// All kinds, for exhaustive metric pre-registration and tests.
    pub const ALL: [ErrorKind; 9] = [
        ErrorKind::BadFrame,
        ErrorKind::OversizedFrame,
        ErrorKind::BadRequest,
        ErrorKind::OverBudget,
        ErrorKind::Overloaded,
        ErrorKind::DeadlineExceeded,
        ErrorKind::Degraded,
        ErrorKind::BreakerOpen,
        ErrorKind::ShuttingDown,
    ];
}

/// The request operations the server understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// Batched/sharded trace replay of a tree-search workload.
    Simulate,
    /// Layout audit of a named scenario.
    Audit,
    /// Static struct-layout lint of client-supplied source text.
    Lint,
    /// ccmorph a tree and report the predicted miss delta.
    Morph,
    /// Metrics snapshot.
    Health,
    /// Begin graceful drain.
    Shutdown,
}

impl Op {
    /// Stable wire string.
    pub fn wire(self) -> &'static str {
        match self {
            Op::Simulate => "simulate",
            Op::Audit => "audit",
            Op::Lint => "lint",
            Op::Morph => "morph",
            Op::Health => "health",
            Op::Shutdown => "shutdown",
        }
    }

    /// Parses a wire string.
    pub fn from_wire(s: &str) -> Option<Op> {
        Some(match s {
            "simulate" => Op::Simulate,
            "audit" => Op::Audit,
            "lint" => Op::Lint,
            "morph" => Op::Morph,
            "health" => Op::Health,
            "shutdown" => Op::Shutdown,
            _ => return None,
        })
    }

    /// The request classes the circuit breaker tracks (everything that
    /// runs on a worker).
    pub const WORKER_CLASSES: [Op; 4] = [Op::Simulate, Op::Audit, Op::Lint, Op::Morph];
}

/// A parsed, validated request frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen id, echoed on the reply.
    pub id: u64,
    /// The operation.
    pub op: Op,
    /// Optional per-request deadline override (milliseconds).
    pub deadline_ms: Option<u64>,
    /// Op parameters (everything else in the frame).
    pub params: Json,
}

impl Request {
    /// Builds a request frame value.
    pub fn frame(&self) -> Json {
        let mut obj = match &self.params {
            Json::Obj(m) => m.clone(),
            _ => Default::default(),
        };
        obj.insert("v".into(), Json::Uint(PROTO_VERSION));
        obj.insert("id".into(), Json::Uint(self.id));
        obj.insert("op".into(), Json::str(self.op.wire()));
        if let Some(d) = self.deadline_ms {
            obj.insert("deadline_ms".into(), Json::Uint(d));
        }
        Json::Obj(obj)
    }

    /// Encodes the request as one wire line (newline not included).
    pub fn encode(&self) -> String {
        self.frame().encode()
    }

    /// Parses and validates one frame. `Err` carries the typed kind and
    /// a message for the error reply; the id is recovered when readable
    /// so the reply can still be correlated.
    pub fn decode(line: &str) -> Result<Request, (ErrorKind, u64, String)> {
        let v =
            Json::parse(line).map_err(|e| (ErrorKind::BadFrame, 0, format!("bad JSON: {e}")))?;
        let Some(obj) = v.as_obj() else {
            return Err((ErrorKind::BadFrame, 0, "frame is not an object".into()));
        };
        let id = obj.get("id").and_then(Json::as_u64).unwrap_or(0);
        match obj.get("v").and_then(Json::as_u64) {
            Some(PROTO_VERSION) => {}
            Some(other) => {
                return Err((
                    ErrorKind::BadFrame,
                    id,
                    format!(
                        "unsupported protocol version {other} (this server speaks {PROTO_VERSION})"
                    ),
                ))
            }
            None => {
                return Err((
                    ErrorKind::BadFrame,
                    id,
                    "missing protocol version field `v`".into(),
                ))
            }
        }
        if obj.get("id").and_then(Json::as_u64).is_none() {
            return Err((
                ErrorKind::BadFrame,
                id,
                "missing or non-integer `id`".into(),
            ));
        }
        let op = match obj.get("op").and_then(Json::as_str) {
            Some(s) => Op::from_wire(s)
                .ok_or_else(|| (ErrorKind::BadRequest, id, format!("unknown op `{s}`")))?,
            None => return Err((ErrorKind::BadRequest, id, "missing `op`".into())),
        };
        let deadline_ms = match obj.get("deadline_ms") {
            None => None,
            Some(d) => Some(d.as_u64().ok_or_else(|| {
                (
                    ErrorKind::BadRequest,
                    id,
                    "`deadline_ms` must be a non-negative integer".into(),
                )
            })?),
        };
        let mut params = obj.clone();
        params.remove("v");
        params.remove("id");
        params.remove("op");
        params.remove("deadline_ms");
        Ok(Request {
            id,
            op,
            deadline_ms,
            params: Json::Obj(params),
        })
    }
}

/// A reply frame, already shaped for the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct Reply {
    /// Echoed request id (0 when the request id was unreadable).
    pub id: u64,
    /// Success result or typed error.
    pub body: Result<(Op, Json), WireError>,
}

/// The error half of a reply.
#[derive(Clone, Debug, PartialEq)]
pub struct WireError {
    /// The typed kind.
    pub kind: ErrorKind,
    /// Human-oriented detail.
    pub message: String,
    /// Backoff hint for retryable kinds.
    pub retry_after_ms: Option<u64>,
}

impl Reply {
    /// A success reply.
    pub fn ok(id: u64, op: Op, result: Json) -> Reply {
        Reply {
            id,
            body: Ok((op, result)),
        }
    }

    /// An error reply.
    pub fn err(id: u64, kind: ErrorKind, message: impl Into<String>) -> Reply {
        Reply {
            id,
            body: Err(WireError {
                kind,
                message: message.into(),
                retry_after_ms: None,
            }),
        }
    }

    /// An error reply with a retry-after hint.
    pub fn err_retry(id: u64, kind: ErrorKind, message: impl Into<String>, after_ms: u64) -> Reply {
        Reply {
            id,
            body: Err(WireError {
                kind,
                message: message.into(),
                retry_after_ms: Some(after_ms),
            }),
        }
    }

    /// Encodes as one wire line (newline not included). Byte-stable.
    pub fn encode(&self) -> String {
        let mut fields = vec![
            ("v", Json::Uint(PROTO_VERSION)),
            ("id", Json::Uint(self.id)),
        ];
        match &self.body {
            Ok((op, result)) => {
                fields.push(("ok", Json::Bool(true)));
                fields.push(("op", Json::str(op.wire())));
                fields.push(("result", result.clone()));
            }
            Err(e) => {
                fields.push(("ok", Json::Bool(false)));
                let mut err = vec![
                    ("kind", Json::str(e.kind.wire())),
                    ("message", Json::str(e.message.clone())),
                ];
                if let Some(ms) = e.retry_after_ms {
                    err.push(("retry_after_ms", Json::Uint(ms)));
                }
                fields.push(("error", Json::obj(err)));
            }
        }
        Json::obj(fields).encode()
    }

    /// Parses a reply line (client side). `None` when the line is not a
    /// well-formed reply frame.
    pub fn decode(line: &str) -> Option<Reply> {
        let v = Json::parse(line).ok()?;
        let obj = v.as_obj()?;
        if obj.get("v").and_then(Json::as_u64) != Some(PROTO_VERSION) {
            return None;
        }
        let id = obj.get("id").and_then(Json::as_u64)?;
        match obj.get("ok").and_then(Json::as_bool)? {
            true => {
                let op = Op::from_wire(obj.get("op").and_then(Json::as_str)?)?;
                Some(Reply::ok(id, op, obj.get("result")?.clone()))
            }
            false => {
                let e = obj.get("error")?;
                let kind = ErrorKind::from_wire(e.get("kind")?.as_str()?)?;
                Some(Reply {
                    id,
                    body: Err(WireError {
                        kind,
                        message: e.get("message")?.as_str()?.to_string(),
                        retry_after_ms: e.get("retry_after_ms").and_then(Json::as_u64),
                    }),
                })
            }
        }
    }

    /// The typed error kind, if this is an error reply.
    pub fn error_kind(&self) -> Option<ErrorKind> {
        self.body.as_ref().err().map(|e| e.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = Request {
            id: 42,
            op: Op::Simulate,
            deadline_ms: Some(500),
            params: Json::obj([
                ("keys", Json::Uint(16383)),
                ("searches", Json::Uint(40000)),
                ("seed", Json::Uint(0xCC15_FA00)),
            ]),
        };
        let line = req.encode();
        assert_eq!(Request::decode(&line), Ok(req));
    }

    #[test]
    fn decode_recovers_id_on_bad_version() {
        let (kind, id, _) = Request::decode("{\"v\":9,\"id\":7,\"op\":\"health\"}").unwrap_err();
        assert_eq!(kind, ErrorKind::BadFrame);
        assert_eq!(id, 7);
    }

    #[test]
    fn missing_version_or_id_is_bad_frame() {
        assert_eq!(
            Request::decode("{\"id\":1,\"op\":\"health\"}")
                .unwrap_err()
                .0,
            ErrorKind::BadFrame
        );
        assert_eq!(
            Request::decode("{\"v\":1,\"op\":\"health\"}")
                .unwrap_err()
                .0,
            ErrorKind::BadFrame
        );
        assert_eq!(Request::decode("[]").unwrap_err().0, ErrorKind::BadFrame);
    }

    #[test]
    fn unknown_op_is_bad_request_with_id() {
        let (kind, id, msg) =
            Request::decode("{\"v\":1,\"id\":3,\"op\":\"frobnicate\"}").unwrap_err();
        assert_eq!(kind, ErrorKind::BadRequest);
        assert_eq!(id, 3);
        assert!(msg.contains("frobnicate"));
    }

    #[test]
    fn replies_encode_byte_stably_and_round_trip() {
        let ok = Reply::ok(7, Op::Health, Json::obj([("queue_depth", Json::Uint(0))]));
        assert_eq!(
            ok.encode(),
            "{\"id\":7,\"ok\":true,\"op\":\"health\",\"result\":{\"queue_depth\":0},\"v\":1}"
        );
        assert_eq!(Reply::decode(&ok.encode()), Some(ok));

        let err = Reply::err_retry(9, ErrorKind::Overloaded, "queue full", 25);
        assert_eq!(
            err.encode(),
            "{\"error\":{\"kind\":\"overloaded\",\"message\":\"queue full\",\"retry_after_ms\":25},\"id\":9,\"ok\":false,\"v\":1}"
        );
        assert_eq!(Reply::decode(&err.encode()), Some(err));
    }

    #[test]
    fn every_kind_round_trips_its_wire_string() {
        for kind in ErrorKind::ALL {
            assert_eq!(ErrorKind::from_wire(kind.wire()), Some(kind));
        }
        for op in [
            Op::Simulate,
            Op::Audit,
            Op::Lint,
            Op::Morph,
            Op::Health,
            Op::Shutdown,
        ] {
            assert_eq!(Op::from_wire(op.wire()), Some(op));
        }
    }
}
