//! A minimal blocking client for cc-serve, plus the jittered-backoff
//! retry helper the protocol's `overloaded` replies are designed for.
//!
//! The client is deliberately dumb: one TCP connection, line-delimited
//! frames, blocking reads. The interesting part is
//! [`Client::request_with_retry`]: it honors the server's
//! `retry_after_ms` hint, adds deterministic (seeded) jitter so a herd
//! of shed clients doesn't re-stampede in lockstep, and gives up after a
//! bounded number of attempts. The chaos harness uses exactly this path,
//! which keeps the retry logic itself under test.

use crate::proto::{ErrorKind, Reply, Request};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Deterministic decorrelated jitter (SplitMix64-stepped), in the same
/// spirit as cc-fault's seed derivation: same seed → same backoff
/// schedule, so chaos runs are reproducible.
pub struct Backoff {
    state: u64,
    /// Base delay when the server gives no hint.
    pub base_ms: u64,
    /// Ceiling on any single sleep.
    pub cap_ms: u64,
}

impl Backoff {
    /// A backoff schedule seeded for reproducibility.
    pub fn new(seed: u64) -> Self {
        Backoff {
            state: seed,
            base_ms: 10,
            cap_ms: 2_000,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64 — the workspace's standard small PRNG.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The sleep for retry number `attempt` (0-based) given the
    /// server's optional hint: `hint + uniform[0, hint)` jitter, capped.
    pub fn delay_ms(&mut self, attempt: u32, hint_ms: Option<u64>) -> u64 {
        let base = match hint_ms {
            Some(h) => h.max(1),
            None => self.base_ms.saturating_mul(1 << attempt.min(8)),
        };
        let jitter = self.next_u64() % base.max(1);
        (base + jitter).min(self.cap_ms)
    }
}

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's reply didn't parse (protocol bug or wrong peer).
    BadReply(String),
    /// Retries exhausted; the last typed error is enclosed.
    RetriesExhausted {
        /// Error kind of the final refusal.
        kind: ErrorKind,
        /// Server's message on the final refusal.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::BadReply(m) => write!(f, "bad reply: {m}"),
            ClientError::RetriesExhausted { kind, message } => {
                write!(f, "retries exhausted on `{}`: {message}", kind.wire())
            }
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One blocking connection to a cc-serve instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7070`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
            next_id: 0,
        })
    }

    /// Allocates the next request id on this connection.
    pub fn next_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Sends one request and blocks for its reply.
    pub fn request(&mut self, req: &Request) -> Result<Reply, ClientError> {
        writeln!(self.writer, "{}", req.encode())?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Reply::decode(line.trim_end())
            .ok_or_else(|| ClientError::BadReply(line.trim_end().to_string()))
    }

    /// Sends `req`, retrying typed-retryable refusals (`overloaded`,
    /// `breaker_open`) up to `max_retries` times with jittered backoff.
    /// Non-retryable errors and successes return immediately.
    pub fn request_with_retry(
        &mut self,
        req: &Request,
        backoff: &mut Backoff,
        max_retries: u32,
    ) -> Result<Reply, ClientError> {
        let mut attempt = 0u32;
        loop {
            let reply = self.request(req)?;
            match &reply.body {
                Err(e) if e.kind.retryable() && attempt < max_retries => {
                    let delay = backoff.delay_ms(attempt, e.retry_after_ms);
                    std::thread::sleep(Duration::from_millis(delay));
                    attempt += 1;
                }
                Err(e) if e.kind.retryable() => {
                    return Err(ClientError::RetriesExhausted {
                        kind: e.kind,
                        message: e.message.clone(),
                    });
                }
                _ => return Ok(reply),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let mut a = Backoff::new(42);
        let mut b = Backoff::new(42);
        let mut c = Backoff::new(43);
        let sa: Vec<u64> = (0..5).map(|i| a.delay_ms(i, None)).collect();
        let sb: Vec<u64> = (0..5).map(|i| b.delay_ms(i, None)).collect();
        let sc: Vec<u64> = (0..5).map(|i| c.delay_ms(i, None)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn backoff_honors_server_hint_and_cap() {
        let mut b = Backoff::new(1);
        for attempt in 0..4 {
            let d = b.delay_ms(attempt, Some(40));
            assert!((40..80).contains(&d), "hinted delay {d} out of [40,80)");
        }
        let d = b.delay_ms(0, Some(10_000));
        assert_eq!(d, b.cap_ms, "hint beyond cap is clamped");
    }

    #[test]
    fn backoff_grows_exponentially_without_hint() {
        let mut b = Backoff::new(7);
        let d0 = b.delay_ms(0, None);
        let d4 = b.delay_ms(4, None);
        assert!(d0 < 20 * 2, "attempt 0 near base: {d0}");
        assert!(d4 >= 160, "attempt 4 at least 16x base: {d4}");
    }
}
