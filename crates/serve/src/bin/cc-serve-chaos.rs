//! cc-serve-chaos: the server-plane chaos harness.
//!
//! Drives seeded [`ServerFault`] schedules (cc-fault plane 4) against
//! live in-process servers and verifies the robustness contract:
//!
//! * no fault escapes as a process-level panic — every one lands as a
//!   typed error reply or a clean session close;
//! * every fault leaves an honest degradation counter behind;
//! * the server stays serviceable after each fault (a follow-up health
//!   and simulate both succeed);
//! * drain completes cleanly after the abuse.
//!
//! `--soak` adds a concurrency stage: several clients hammer a small
//! server through the retrying client path while one injected poison
//! degrades a single request, then the server must drain cleanly.
//!
//! Exit codes: `0` all checks passed; `1` contract violations (printed);
//! `2` bad invocation.

use cc_fault::{FaultPlan, ServerFault};
use cc_serve::breaker::BreakerConfig;
use cc_serve::client::{Backoff, Client};
use cc_serve::json::Json;
use cc_serve::proto::{ErrorKind, Op, Reply, Request, MAX_FRAME_BYTES};
use cc_serve::server::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const USAGE: &str = "\
cc-serve-chaos: seeded fault matrix + soak for cc-serve

USAGE:
  cc-serve-chaos [--seeds N] [--base-seed S] [--faults N] [--soak]
                 [--metrics-out PATH]

  --seeds N         fault-matrix seeds to run (default 4)
  --base-seed S     first seed (default 3405691582)
  --faults N        faults per seed; 6+ covers every variant (default 6)
  --soak            also run the concurrency soak stage
  --metrics-out PATH  write the final server metrics snapshot here
";

struct Args {
    seeds: u64,
    base_seed: u64,
    faults: u32,
    soak: bool,
    metrics_out: Option<std::path::PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        seeds: 4,
        base_seed: 0xCAFE_BABE,
        faults: 6,
        soak: false,
        metrics_out: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seeds" => {
                out.seeds = value("--seeds")?
                    .parse()
                    .map_err(|_| "--seeds: not a number".to_string())?
            }
            "--base-seed" => {
                out.base_seed = value("--base-seed")?
                    .parse()
                    .map_err(|_| "--base-seed: not a number".to_string())?
            }
            "--faults" => {
                out.faults = value("--faults")?
                    .parse()
                    .map_err(|_| "--faults: not a number".to_string())?
            }
            "--soak" => out.soak = true,
            "--metrics-out" => {
                out.metrics_out = Some(std::path::PathBuf::from(value("--metrics-out")?))
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(out)
}

/// A small, fast simulate request body.
fn small_simulate(id: u64, seed: u64, chaos: Option<&'static str>) -> Request {
    let mut params = vec![
        ("keys", Json::Uint(256)),
        ("searches", Json::Uint(64)),
        ("seed", Json::Uint(seed)),
        ("shards", Json::Uint(1)),
    ];
    if let Some(flag) = chaos {
        params.push((flag, Json::Bool(true)));
    }
    Request {
        id,
        op: Op::Simulate,
        deadline_ms: Some(5_000),
        params: Json::obj(params),
    }
}

fn health(id: u64) -> Request {
    Request {
        id,
        op: Op::Health,
        deadline_ms: None,
        params: Json::obj([]),
    }
}

/// Pulls a `serve.*` counter out of a health reply's metrics snapshot.
fn counter(reply: &Reply, key: &str) -> u64 {
    let Ok((_, result)) = &reply.body else {
        return 0;
    };
    let Some(metrics_json) = result.get("metrics").and_then(Json::as_str) else {
        return 0;
    };
    let Ok(metrics) = Json::parse(metrics_json) else {
        return 0;
    };
    metrics.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// The per-fault contract check: what the reply must look like and which
/// counter must move.
struct Check {
    fault: ServerFault,
    failures: Vec<String>,
}

impl Check {
    fn fail(&mut self, msg: impl Into<String>) {
        self.failures
            .push(format!("{:?}: {}", self.fault, msg.into()));
    }
}

fn counter_of(client: &mut Client, key: &str) -> u64 {
    let id = client.next_id();
    match client.request(&health(id)) {
        Ok(reply) => counter(&reply, key),
        Err(_) => 0,
    }
}

/// Polls `key` on a fresh health until it reaches `want` (sessions close
/// asynchronously after a drop/stall).
fn wait_counter_at_least(client: &mut Client, key: &str, want: u64, check: &mut Check) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let have = counter_of(client, key);
        if have >= want {
            return;
        }
        if Instant::now() >= deadline {
            check.fail(format!("counter {key} stuck at {have}, wanted >= {want}"));
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn run_fault(
    addr: &str,
    seed: u64,
    ordinal: u64,
    fault: ServerFault,
    probe: &mut Client,
) -> Vec<String> {
    let mut check = Check {
        fault,
        failures: Vec::new(),
    };
    match fault {
        ServerFault::WorkerPanicStart | ServerFault::WorkerPanicMid => {
            let flag = if fault == ServerFault::WorkerPanicStart {
                "chaos_panic"
            } else {
                "chaos_panic_mid"
            };
            let degraded_before = counter_of(probe, "serve.sessions.degraded");
            let mut client = match Client::connect(addr) {
                Ok(c) => c,
                Err(e) => {
                    check.fail(format!("connect: {e}"));
                    return check.failures;
                }
            };
            let req = small_simulate(1, seed ^ ordinal, Some(flag));
            match client.request(&req) {
                Ok(reply) => match reply.error_kind() {
                    Some(ErrorKind::Degraded) | Some(ErrorKind::BreakerOpen) => {}
                    other => check.fail(format!(
                        "wanted typed degraded/breaker_open reply, got {other:?}"
                    )),
                },
                Err(e) => check.fail(format!("no reply to panic request: {e}")),
            }
            // The same session must still be serviceable (isolation).
            match client.request(&small_simulate(2, seed ^ ordinal ^ 1, None)) {
                Ok(reply) => {
                    if reply.body.is_err() && reply.error_kind() != Some(ErrorKind::BreakerOpen) {
                        check.fail(format!("session degraded past the one request: {reply:?}"));
                    }
                }
                Err(e) => check.fail(format!("session died after contained panic: {e}")),
            }
            if counter_of(probe, "serve.sessions.degraded") <= degraded_before
                && counter_of(probe, "serve.breaker.rejected") == 0
            {
                check.fail("no degradation counter moved".to_string());
            }
        }
        ServerFault::ConnectionDrop { after_frames } => {
            let closed_before = counter_of(probe, "serve.sessions.closed");
            match TcpStream::connect(addr) {
                Ok(mut stream) => {
                    for i in 0..after_frames {
                        let req =
                            small_simulate(u64::from(i) + 1, seed ^ ordinal ^ u64::from(i), None);
                        if writeln!(stream, "{}", req.encode()).is_err() {
                            break;
                        }
                    }
                    drop(stream); // vanish without reading any reply
                }
                Err(e) => check.fail(format!("connect: {e}")),
            }
            // The abandoned session must wind down, not wedge a thread.
            wait_counter_at_least(
                probe,
                "serve.sessions.closed",
                closed_before + 1,
                &mut check,
            );
        }
        ServerFault::SlowLoris => {
            let stalls_before = counter_of(probe, "serve.sessions.slow_loris");
            match TcpStream::connect(addr) {
                Ok(mut stream) => {
                    // A frame prefix, then silence.
                    let _ = stream.write_all(b"{\"v\":1,\"id\":9,\"op\":\"hea");
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                    let mut buf = Vec::new();
                    let _ = stream.read_to_end(&mut buf); // server replies + closes
                    let text = String::from_utf8_lossy(&buf);
                    if !text.contains("bad_frame") {
                        check.fail(format!("wanted a typed bad_frame close, got {text:?}"));
                    }
                }
                Err(e) => check.fail(format!("connect: {e}")),
            }
            wait_counter_at_least(
                probe,
                "serve.sessions.slow_loris",
                stalls_before + 1,
                &mut check,
            );
        }
        ServerFault::GarbageFrame { len } => {
            let bad_before = counter_of(probe, "serve.errors.bad_frame")
                + counter_of(probe, "serve.errors.bad_request");
            match Client::connect(addr) {
                Ok(mut client) => {
                    // Seed-derived garbage, newline-free so it is one frame.
                    let mut state = seed ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let garbage: Vec<u8> = (0..len)
                        .map(|_| {
                            state ^= state << 13;
                            state ^= state >> 7;
                            state ^= state << 17;
                            let b = (state >> 32) as u8;
                            if b == b'\n' || b == b'\r' {
                                b'#'
                            } else {
                                b
                            }
                        })
                        .collect();
                    // Reach under the client: raw bytes, then a real request.
                    let reply = raw_frame_roundtrip(addr, &garbage);
                    match reply {
                        Some(r) => match r.error_kind() {
                            Some(ErrorKind::BadFrame) | Some(ErrorKind::BadRequest) => {}
                            other => check
                                .fail(format!("wanted typed bad_frame/bad_request, got {other:?}")),
                        },
                        None => check.fail("no reply to garbage frame".to_string()),
                    }
                    // Probe the server's pulse on an ordinary connection.
                    let id = client.next_id();
                    if client.request(&health(id)).is_err() {
                        check.fail("server unserviceable after garbage frame".to_string());
                    }
                    if counter_of(probe, "serve.errors.bad_frame")
                        + counter_of(probe, "serve.errors.bad_request")
                        <= bad_before
                    {
                        check.fail("bad-frame counter did not move".to_string());
                    }
                }
                Err(e) => check.fail(format!("connect: {e}")),
            }
        }
        ServerFault::OversizedFrame => {
            let over_before = counter_of(probe, "serve.errors.oversized_frame");
            match TcpStream::connect(addr) {
                Ok(mut stream) => {
                    let chunk = vec![b'a'; 64 * 1024];
                    let mut sent = 0usize;
                    while sent <= MAX_FRAME_BYTES + chunk.len() {
                        if stream.write_all(&chunk).is_err() {
                            break;
                        }
                        sent += chunk.len();
                    }
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                    let mut line = Vec::new();
                    let mut byte = [0u8; 1];
                    while let Ok(1) = stream.read(&mut byte) {
                        if byte[0] == b'\n' {
                            break;
                        }
                        line.push(byte[0]);
                    }
                    match Reply::decode(&String::from_utf8_lossy(&line)) {
                        Some(r) if r.error_kind() == Some(ErrorKind::OversizedFrame) => {
                            // The session must survive in discard mode: finish
                            // the runaway line, then speak normally.
                            let _ = stream.write_all(b"\n");
                            let _ = writeln!(stream, "{}", health(5).encode());
                            let mut rest = Vec::new();
                            while let Ok(1) = stream.read(&mut byte) {
                                if byte[0] == b'\n' {
                                    break;
                                }
                                rest.push(byte[0]);
                            }
                            match Reply::decode(&String::from_utf8_lossy(&rest)) {
                                Some(r2) if r2.body.is_ok() => {}
                                other => check.fail(format!(
                                    "session unusable after oversized frame: {other:?}"
                                )),
                            }
                        }
                        other => check.fail(format!("wanted typed oversized_frame, got {other:?}")),
                    }
                }
                Err(e) => check.fail(format!("connect: {e}")),
            }
            wait_counter_at_least(
                probe,
                "serve.errors.oversized_frame",
                over_before + 1,
                &mut check,
            );
        }
    }
    check.failures
}

/// Writes raw bytes + newline on a fresh connection and decodes the
/// one-line reply.
fn raw_frame_roundtrip(addr: &str, bytes: &[u8]) -> Option<Reply> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.write_all(bytes).ok()?;
    stream.write_all(b"\n").ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    while let Ok(1) = stream.read(&mut byte) {
        if byte[0] == b'\n' {
            break;
        }
        line.push(byte[0]);
    }
    Reply::decode(&String::from_utf8_lossy(&line))
}

fn chaos_config(metrics_out: Option<std::path::PathBuf>) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_cap: 8,
        max_sessions: 32,
        default_deadline_ms: 5_000,
        max_deadline_ms: 10_000,
        read_stall_ms: 250,
        drain_deadline_ms: 3_000,
        retry_after_ms: 10,
        // High threshold: the matrix wants to see `degraded` replies, not
        // a quarantine; the breaker's own paths are covered by crate tests.
        breaker: BreakerConfig {
            threshold: 64,
            cooldown_ms: 200,
        },
        allow_chaos: true,
        metrics_out,
        ..ServeConfig::default()
    }
}

/// One seed of the fault matrix: fresh server, scheduled faults, drain.
fn run_seed(seed: u64, faults: u32, metrics_out: Option<std::path::PathBuf>) -> Vec<String> {
    let mut failures = Vec::new();
    let plan = FaultPlan::new(seed).server_faults(faults);
    let schedule = plan.server_schedule();
    let server = match Server::spawn(chaos_config(metrics_out)) {
        Ok(s) => s,
        Err(e) => return vec![format!("seed {seed}: server spawn failed: {e}")],
    };
    let addr = server.addr().to_string();
    let mut probe = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => return vec![format!("seed {seed}: probe connect failed: {e}")],
    };

    for (ordinal, fault) in schedule.iter().enumerate() {
        for f in run_fault(&addr, seed, ordinal as u64, *fault, &mut probe) {
            failures.push(format!("seed {seed}, fault {ordinal}: {f}"));
        }
    }

    // After the whole schedule the server must still do real work.
    let id = probe.next_id();
    match probe.request(&small_simulate(id, seed, None)) {
        Ok(reply) if reply.body.is_ok() => {}
        other => failures.push(format!(
            "seed {seed}: post-matrix simulate failed: {other:?}"
        )),
    }

    drop(probe);
    let outcome = server.drain();
    if !outcome.clean {
        failures.push(format!(
            "seed {seed}: drain not clean: {outcome:?} (hung drain is a contract violation)"
        ));
    }
    failures
}

/// The soak stage: concurrent retrying clients, one injected poison, and
/// a clean drain under load.
fn run_soak(metrics_out: Option<std::path::PathBuf>) -> Vec<String> {
    let mut failures = Vec::new();
    let cfg = ServeConfig {
        workers: 2,
        queue_cap: 4, // small: force real shed/retry traffic
        ..chaos_config(metrics_out)
    };
    let server = match Server::spawn(cfg) {
        Ok(s) => s,
        Err(e) => return vec![format!("soak: server spawn failed: {e}")],
    };
    let addr = server.addr().to_string();

    const CLIENTS: u64 = 4;
    const REQUESTS: u64 = 12;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || -> Vec<String> {
                let mut failures = Vec::new();
                let mut client = match Client::connect(&addr) {
                    Ok(cl) => cl,
                    Err(e) => return vec![format!("soak client {c}: connect: {e}")],
                };
                let mut backoff = Backoff::new(0x50AC ^ c);
                for r in 0..REQUESTS {
                    // Client 0's sixth request is the poison pill.
                    let chaos = (c == 0 && r == 5).then_some("chaos_panic");
                    let req = small_simulate(r + 1, c * 1000 + r, chaos);
                    match client.request_with_retry(&req, &mut backoff, 6) {
                        Ok(reply) => match (&reply.body, chaos) {
                            (Ok(_), None) => {}
                            (Err(e), Some(_)) if e.kind == ErrorKind::Degraded => {}
                            (body, _) => failures.push(format!(
                                "soak client {c} req {r}: unexpected reply {body:?}"
                            )),
                        },
                        Err(e) => failures.push(format!("soak client {c} req {r}: {e}")),
                    }
                }
                failures
            })
        })
        .collect();
    for h in handles {
        match h.join() {
            Ok(f) => failures.extend(f),
            Err(_) => failures.push("soak: client thread panicked".to_string()),
        }
    }

    let degraded = server.metrics().get("serve.sessions.degraded");
    if degraded != 1 {
        failures.push(format!(
            "soak: wanted exactly 1 degraded request, counted {degraded}"
        ));
    }
    let outcome = server.drain();
    if !outcome.clean {
        failures.push(format!("soak: drain not clean under load: {outcome:?}"));
    }
    failures
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                std::process::exit(0);
            }
            eprintln!("cc-serve-chaos: {msg}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };

    let mut failures = Vec::new();
    for i in 0..args.seeds {
        let seed = args.base_seed.wrapping_add(i);
        // Only the final server writes the artifact (last writer wins
        // anyway; this keeps intermediate snapshots from racing).
        let out = (!args.soak && i + 1 == args.seeds)
            .then(|| args.metrics_out.clone())
            .flatten();
        let fs = run_seed(seed, args.faults, out);
        println!(
            "seed {seed}: {} faults, {} violation(s)",
            args.faults,
            fs.len()
        );
        failures.extend(fs);
    }
    if args.soak {
        let fs = run_soak(args.metrics_out.clone());
        println!("soak: {} violation(s)", fs.len());
        failures.extend(fs);
    }

    if failures.is_empty() {
        println!("cc-serve-chaos: all contracts held");
        std::process::exit(0);
    }
    eprintln!("cc-serve-chaos: {} contract violation(s):", failures.len());
    for f in &failures {
        eprintln!("  - {f}");
    }
    std::process::exit(1);
}
