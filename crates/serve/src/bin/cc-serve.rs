//! The cc-serve binary: bind, serve, drain on `shutdown` or SIGTERM-less
//! environments via the wire `shutdown` request.
//!
//! Exit codes follow the workspace convention:
//! * `0` — served and drained cleanly.
//! * `1` — drain was not clean (hung workers/sessions) or runtime failure.
//! * `2` — bad invocation (unparseable flags, bind failure).

use cc_serve::breaker::BreakerConfig;
use cc_serve::server::{ServeConfig, Server};

const USAGE: &str = "\
cc-serve: fault-tolerant layout-advisory server

USAGE:
  cc-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
           [--max-sessions N] [--deadline-ms MS] [--max-deadline-ms MS]
           [--read-stall-ms MS] [--drain-ms MS] [--retry-after-ms MS]
           [--breaker-threshold N] [--breaker-cooldown-ms MS]
           [--metrics-out PATH] [--allow-chaos]

  --addr HOST:PORT          bind address (default 127.0.0.1:7070; port 0 picks)
  --workers N               worker pool size (default 2)
  --queue-cap N             admission queue capacity (default 16)
  --max-sessions N          concurrent session cap (default 64)
  --deadline-ms MS          default per-request deadline (default 10000)
  --max-deadline-ms MS      cap on client-requested deadlines (default 60000)
  --read-stall-ms MS        slow-loris mid-frame stall limit (default 2000)
  --drain-ms MS             drain deadline before cooperative cancel (default 5000)
  --retry-after-ms MS       base overload retry hint (default 25)
  --breaker-threshold N     consecutive panics tripping a class (default 3)
  --breaker-cooldown-ms MS  breaker quarantine length (default 1000)
  --metrics-out PATH        write the final metrics snapshot here on drain
  --allow-chaos             honor chaos_* request params (testing only)

The server speaks line-delimited JSON (protocol v1); send
  {\"v\":1,\"id\":1,\"op\":\"shutdown\"}
to begin a graceful drain.
";

fn parse_args(args: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7070".into(),
        ..ServeConfig::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?.clone(),
            "--workers" => cfg.workers = parse_num(value("--workers")?, "--workers")?,
            "--queue-cap" => cfg.queue_cap = parse_num(value("--queue-cap")?, "--queue-cap")?,
            "--max-sessions" => {
                cfg.max_sessions = parse_num(value("--max-sessions")?, "--max-sessions")?
            }
            "--deadline-ms" => {
                cfg.default_deadline_ms = parse_num(value("--deadline-ms")?, "--deadline-ms")?
            }
            "--max-deadline-ms" => {
                cfg.max_deadline_ms = parse_num(value("--max-deadline-ms")?, "--max-deadline-ms")?
            }
            "--read-stall-ms" => {
                cfg.read_stall_ms = parse_num(value("--read-stall-ms")?, "--read-stall-ms")?
            }
            "--drain-ms" => cfg.drain_deadline_ms = parse_num(value("--drain-ms")?, "--drain-ms")?,
            "--retry-after-ms" => {
                cfg.retry_after_ms = parse_num(value("--retry-after-ms")?, "--retry-after-ms")?
            }
            "--breaker-threshold" => {
                cfg.breaker = BreakerConfig {
                    threshold: parse_num(value("--breaker-threshold")?, "--breaker-threshold")?,
                    ..cfg.breaker
                }
            }
            "--breaker-cooldown-ms" => {
                cfg.breaker = BreakerConfig {
                    cooldown_ms: parse_num(
                        value("--breaker-cooldown-ms")?,
                        "--breaker-cooldown-ms",
                    )?,
                    ..cfg.breaker
                }
            }
            "--metrics-out" => {
                cfg.metrics_out = Some(std::path::PathBuf::from(value("--metrics-out")?))
            }
            "--allow-chaos" => cfg.allow_chaos = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(cfg)
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{flag}: `{s}` is not a valid number"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                std::process::exit(0);
            }
            eprintln!("cc-serve: {msg}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };

    let server = match Server::spawn(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cc-serve: bind failed: {e}");
            std::process::exit(2);
        }
    };
    println!("listening {}", server.addr());
    server.wait_for_shutdown();
    let outcome = server.drain();
    std::process::exit(if outcome.clean { 0 } else { 1 });
}
