//! The server's shared metrics surface, flowing through the cc-obs
//! [`MetricsRegistry`].
//!
//! Every robustness event — shed, timeout, breaker trip, degraded
//! session, quota bypass — lands here under a `serve.*` key, and the
//! `health` request (plus the drain-time flush) snapshots the registry
//! as the same byte-stable JSON every other tool in the workspace emits.
//! Counter keys for the whole degradation taxonomy are pre-registered at
//! zero so snapshots diff cleanly: an absent counter is a bug, a zero
//! counter is good news.

use crate::proto::{ErrorKind, Op};
use cc_obs::MetricsRegistry;
use std::sync::Mutex;

/// Shared, thread-safe wrapper over one [`MetricsRegistry`].
pub struct ServeMetrics {
    reg: Mutex<MetricsRegistry>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// A registry with every taxonomy counter pre-registered at zero.
    pub fn new() -> Self {
        let mut reg = MetricsRegistry::new();
        for kind in ErrorKind::ALL {
            reg.set(&format!("serve.errors.{}", kind.wire()), 0);
        }
        for op in Op::WORKER_CLASSES {
            reg.set(&format!("serve.requests.{}", op.wire()), 0);
        }
        for key in [
            "serve.requests.total",
            "serve.replies.ok",
            "serve.queue.sheds",
            "serve.queue.peak",
            "serve.deadline.timeouts",
            "serve.breaker.trips",
            "serve.breaker.rejected",
            "serve.sessions.opened",
            "serve.sessions.closed",
            "serve.sessions.degraded",
            "serve.sessions.dropped",
            "serve.sessions.slow_loris",
            "serve.store.quota_bypasses",
            "serve.drain.cancelled",
        ] {
            reg.set(key, 0);
        }
        ServeMetrics {
            reg: Mutex::new(reg),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsRegistry> {
        // Counters are plain integers: a panicked bumper leaves them
        // consistent, so poisoning is ignorable (same contract as
        // cc-bench's process-global registry).
        self.reg.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Adds `delta` to `key`.
    pub fn bump(&self, key: &str, delta: u64) {
        self.lock().bump(key, delta);
    }

    /// Sets `key` to `value` (gauges).
    pub fn set(&self, key: &str, value: u64) {
        self.lock().set(key, value);
    }

    /// Current value of `key` (0 when unset).
    pub fn get(&self, key: &str) -> u64 {
        self.lock().get(key).unwrap_or(0)
    }

    /// Counts one error reply of `kind` under the taxonomy key.
    pub fn count_error(&self, kind: ErrorKind) {
        self.bump(&format!("serve.errors.{}", kind.wire()), 1);
    }

    /// A full copy of the registry.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.lock().clone()
    }

    /// Byte-stable JSON snapshot.
    pub fn to_json(&self) -> String {
        self.lock().to_json()
    }

    /// Folds an external registry (e.g. trace-store counters) in.
    pub fn absorb(&self, other: &MetricsRegistry) {
        self.lock().merge(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_keys_are_preregistered_at_zero() {
        let m = ServeMetrics::new();
        let json = m.to_json();
        for kind in ErrorKind::ALL {
            assert!(
                json.contains(&format!("\"serve.errors.{}\":0", kind.wire())),
                "{json}"
            );
        }
        assert!(json.contains("\"serve.queue.sheds\":0"));
        assert!(json.contains("\"serve.sessions.degraded\":0"));
    }

    #[test]
    fn bump_and_count_error() {
        let m = ServeMetrics::new();
        m.count_error(ErrorKind::Overloaded);
        m.bump("serve.queue.sheds", 1);
        assert_eq!(m.get("serve.errors.overloaded"), 1);
        assert_eq!(m.get("serve.queue.sheds"), 1);
        assert_eq!(m.get("serve.errors.degraded"), 0);
    }
}
