//! cc-serve: a fault-tolerant, multi-tenant layout-advisory server.
//!
//! Wraps the workspace's analysis engines — cc-bench's [`SearchReplay`]
//! simulator, cc-audit's scenario auditor, cc-lint's struct-layout
//! analyzer — behind one versioned, line-delimited JSON protocol over
//! plain TCP (`std::net`; no async runtime, no dependencies).
//!
//! The point of the crate is not the RPC plumbing but the robustness
//! contract around it, exercised by the `cc-serve-chaos` harness:
//!
//! * **Deadlines** — every request carries (or inherits) a deadline;
//!   replay loops observe it cooperatively between segments and give a
//!   typed `deadline` error, never a hung connection.
//! * **Backpressure** — admission is a bounded queue; when it is full
//!   the server *sheds* with a typed `overloaded` reply carrying a
//!   retry-after hint, which [`client::Backoff`] turns into jittered
//!   client-side retries.
//! * **Isolation** — op bodies run under `catch_unwind`; a panic
//!   degrades one request into a typed `degraded` reply and the process
//!   survives. Repeated panics trip a per-request-class circuit
//!   [`breaker`], quarantining the class while everything else serves.
//! * **Fairness** — a per-session quota keeps one tenant from evicting
//!   the shared [`TraceStore`] tier out from under the others; over-quota
//!   requests bypass the cache (bit-identical results, just slower).
//! * **Bounded work** — workloads beyond the full-replay budget are
//!   refused with a typed `over_budget` error pointing at the sampled-
//!   simulation roadmap item instead of being ground through.
//! * **Graceful drain** — shutdown stops accepting, lets in-flight work
//!   finish or deadline out, cancels stragglers, and flushes every
//!   counter through the cc-obs [`MetricsRegistry`].
//!
//! [`SearchReplay`]: cc_bench::replay::SearchReplay
//! [`TraceStore`]: cc_sweep::TraceStore
//! [`MetricsRegistry`]: cc_obs::MetricsRegistry

pub mod breaker;
pub mod client;
pub mod json;
pub mod metrics;
pub mod ops;
pub mod proto;
pub mod queue;
pub mod server;
