//! Request execution: the four worker-served operations.
//!
//! Each op is a pure function of its parameters (plus the shared
//! [`TraceStore`], which is proven not to change results), so success
//! replies are deterministic and byte-stable — the property the chaos
//! harness pins when it asserts a poisoned neighbour session cannot
//! change a clean session's bytes.
//!
//! Robustness hooks threaded through every op:
//!
//! * **Deadlines** — [`Gate::check`] is called between replay segments
//!   (cooperative cancellation; a segment is the unit of preemption).
//! * **Budget admission** — a `simulate`/`morph` workload whose estimated
//!   event count exceeds the full-replay budget is answered by
//!   *representative-interval sampled simulation* (`sampled: true` in
//!   the reply, with coverage/confidence/error-bound fields) instead of
//!   being refused; only workloads past the far larger sampled budget
//!   still get the typed `over_budget` refusal, instead of being
//!   allowed to starve other sessions.
//! * **Store quota** — each session may charge at most
//!   `store_quota_bytes` of generated trace into the shared cache tier;
//!   past that its requests still run, but bypass the store
//!   (`serve.store.quota_bypasses`), so one tenant cannot evict the
//!   tier out from under the others.
//! * **Chaos** — when (and only when) the server was started with
//!   `allow_chaos`, a request may carry `chaos_panic` /
//!   `chaos_panic_mid` to detonate the worker at a chosen point; the
//!   harness uses this to prove panic isolation.

use crate::json::Json;
use crate::proto::ErrorKind;
use cc_bench::field::{run_field_leg, FieldCase, FieldLegStats};
use cc_bench::replay::{build_bst, SearchReplay, TreeSpec, SEG_CAP};
use cc_bench::sample::{Cancelled, SampledReplay, SampledSpec};
use cc_sim::MachineConfig;
use cc_sweep::{TraceKey, TraceStore};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Admission limits for worker-served requests.
#[derive(Clone, Copy, Debug)]
pub struct ServeLimits {
    /// Largest tree (`keys`) a request may build.
    pub max_keys: u64,
    /// Full-replay budget: the estimated event count above which a
    /// request is answered by sampled simulation instead of full replay.
    pub max_replay_events: u64,
    /// Sampled-simulation budget: the estimated event count above which
    /// even a sampled request is refused with `over_budget`. The default
    /// is 1000× the full-replay budget — sampled cost scales with phase
    /// diversity, not trace length, so the ceiling guards fingerprinting
    /// cost, not replay cost.
    pub max_sampled_events: u64,
    /// Largest accepted `shards` parameter.
    pub max_shards: u64,
    /// Largest accepted `lint` source, in bytes.
    pub max_lint_bytes: usize,
    /// Largest accepted audit scenario size.
    pub max_audit_n: u64,
    /// Per-session byte quota on traces generated into the shared store.
    pub store_quota_bytes: u64,
}

impl Default for ServeLimits {
    fn default() -> Self {
        ServeLimits {
            max_keys: 1 << 20,
            // The roadmap's "~2.4M events max" full-replay ceiling.
            max_replay_events: 2_400_000,
            max_sampled_events: 2_400_000_000,
            max_shards: 8,
            max_lint_bytes: 256 << 10,
            max_audit_n: 1 << 16,
            store_quota_bytes: 64 << 20,
        }
    }
}

/// Per-session tenant state shared between the session thread and the
/// workers serving its requests.
#[derive(Debug, Default)]
pub struct SessionCtx {
    /// Bytes of generated trace charged against the store quota.
    pub store_bytes: AtomicU64,
    /// Requests from this session that ended in a worker panic.
    pub degraded_requests: AtomicU64,
}

/// Cooperative cancellation: a deadline plus the server-wide drain flag,
/// checked between replay segments.
#[derive(Clone)]
pub struct Gate {
    /// When this request must be finished.
    pub deadline: Instant,
    /// Set when drain has given up on in-flight work.
    pub cancel: Arc<AtomicBool>,
}

impl Gate {
    /// A gate that can only expire by deadline.
    pub fn with_deadline(deadline: Instant) -> Gate {
        Gate {
            deadline,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Errors with the typed kind when the request should stop now.
    pub fn check(&self) -> Result<(), (ErrorKind, String)> {
        if self.cancel.load(Ordering::Relaxed) {
            return Err((
                ErrorKind::DeadlineExceeded,
                "cancelled: server drain deadline passed with this request in flight".into(),
            ));
        }
        if Instant::now() >= self.deadline {
            return Err((
                ErrorKind::DeadlineExceeded,
                "deadline exceeded during replay (cooperative cancellation between segments)"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Shorthand for op outcomes.
pub type OpResult = Result<Json, (ErrorKind, String)>;

fn bad(msg: impl Into<String>) -> (ErrorKind, String) {
    (ErrorKind::BadRequest, msg.into())
}

/// Reads an optional `u64` parameter with a default.
fn param_u64(params: &Json, key: &str, default: u64) -> Result<u64, (ErrorKind, String)> {
    match params.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| bad(format!("`{key}` must be a non-negative integer"))),
    }
}

fn param_str<'a>(params: &'a Json, key: &str) -> Result<Option<&'a str>, (ErrorKind, String)> {
    match params.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| bad(format!("`{key}` must be a string"))),
    }
}

fn param_flag(params: &Json, key: &str) -> bool {
    params.get(key).and_then(Json::as_bool).unwrap_or(false)
}

/// Tree depth in levels: the per-search memory-reference estimate the
/// budget admission uses.
fn levels(keys: u64) -> u64 {
    64 - keys.leading_zeros() as u64
}

/// Estimated replay events for a search workload — used for both the
/// budget gate and the store-quota charge. Deliberately simple and
/// documented rather than exact: one node visit per tree level plus
/// instruction overhead per search.
pub fn estimate_events(keys: u64, searches: u64) -> u64 {
    searches.saturating_mul(levels(keys) + 2)
}

/// `TraceBuf` bytes per packed event (`approx_bytes` per entry: 8-byte
/// address lane + two 4-byte lanes + 1 kind byte).
const BYTES_PER_EVENT: u64 = 17;

/// The parameters of one replay run, shared by `simulate` and `morph`.
/// Field order is cc-lint's: the wide members lead so `tag` stays within
/// one 64-byte line (SPAN-01).
struct ReplaySpec {
    spec: TreeSpec,
    tag: &'static str,
    keys: u64,
    searches: u64,
    seed: u64,
    shards: u64,
}

/// Everything an op needs from the server.
pub struct OpEnv<'a> {
    /// The shared cache tier.
    pub store: &'a TraceStore,
    /// Admission limits.
    pub limits: &'a ServeLimits,
    /// The requesting session's tenant state.
    pub session: &'a SessionCtx,
    /// Deadline/drain gate.
    pub gate: &'a Gate,
    /// Whether chaos parameters are honored.
    pub allow_chaos: bool,
    /// Bumped when this request bypasses the store for quota.
    pub quota_bypass: &'a dyn Fn(),
}

/// Maps a layout name to the fig5 recipe.
fn layout_spec(name: &str, layout_seed: u64) -> Result<TreeSpec, (ErrorKind, String)> {
    Ok(match name {
        "allocation" => TreeSpec {
            randomize: None,
            depth_first: false,
            morph: false,
        },
        "random" => TreeSpec {
            randomize: Some(layout_seed),
            depth_first: false,
            morph: false,
        },
        "dfs" => TreeSpec {
            randomize: Some(layout_seed),
            depth_first: true,
            morph: false,
        },
        "ctree" => TreeSpec {
            randomize: Some(layout_seed),
            depth_first: false,
            morph: true,
        },
        other => {
            return Err(bad(format!(
                "unknown layout `{other}` (expected allocation|random|dfs|ctree)"
            )))
        }
    })
}

/// Searches per sampling interval on the serve path. Fixed (not a
/// request parameter) so equal workloads always share cache keys and
/// reply bytes.
pub const SAMPLE_INTERVAL_SEARCHES: u64 = 2048;

/// The chaos switches a request may carry (honored only under
/// `--allow-chaos`).
struct ChaosPlan {
    /// Panic mid-request, after at least one segment/interval ran.
    panic_mid: bool,
    /// Poison the first `sample_poison` cluster representatives of a
    /// sampled replay — the cc-fault sampler plane, reachable from the
    /// wire for the chaos harness.
    sample_poison: u64,
}

/// Runs one replay under the gate, returning the stats object. `over`
/// divides both event budgets — `morph` passes 2 because it replays the
/// workload twice on one request.
fn run_replay(env: &OpEnv<'_>, r: &ReplaySpec, chaos: &ChaosPlan, over: u64) -> OpResult {
    let machine = MachineConfig::ultrasparc_e5000();
    let est_events = estimate_events(r.keys, r.searches);
    if est_events > env.limits.max_replay_events / over.max(1) {
        return run_sampled(env, r, chaos, over, est_events);
    }
    let chaos_mid = chaos.panic_mid;

    // Store-quota admission: a tenant past its generated-bytes quota
    // keeps full service, but stops charging the shared tier.
    let est_bytes = est_events.saturating_mul(BYTES_PER_EVENT);
    let prior = env
        .session
        .store_bytes
        .fetch_add(est_bytes, Ordering::Relaxed);
    let use_store = prior + est_bytes <= env.limits.store_quota_bytes;
    if !use_store {
        (env.quota_bypass)();
    }
    let store = use_store.then_some(env.store);

    let tree = build_bst(&machine, r.keys, r.spec);
    let key = r.spec.fold_key(TraceKey::new(r.tag));
    let mut replay = SearchReplay::new(machine, r.keys, r.seed, r.shards as usize, store, key);
    let mut done = 0u64;
    while done < r.searches {
        env.gate.check()?;
        done = (done + SEG_CAP).min(r.searches);
        replay.advance_to(done, |k, buf| {
            tree.search(k, buf, false);
        });
        if chaos_mid {
            // Mid-request: at least one segment's worth of replay state
            // exists (and shared-store writes may already be issued)
            // when the worker dies.
            panic!("chaos: injected mid-request worker panic");
        }
    }
    env.gate.check()?;

    let deg = replay.degradation();
    let rep = replay.replayer();
    Ok(Json::obj([
        ("searches", Json::Uint(r.searches)),
        ("keys", Json::Uint(r.keys)),
        ("shards", Json::Uint(rep.shards() as u64)),
        ("events", Json::Uint(rep.events())),
        ("insts", Json::Uint(rep.insts())),
        ("memory_cycles", Json::Uint(rep.memory_cycles())),
        ("avg_us_per_search", Json::Float(replay.avg_us_per_search())),
        (
            "l1",
            Json::obj([
                ("hits", Json::Uint(rep.l1_stats().hits())),
                ("misses", Json::Uint(rep.l1_stats().misses())),
            ]),
        ),
        (
            "l2",
            Json::obj([
                ("hits", Json::Uint(rep.l2_stats().hits())),
                ("misses", Json::Uint(rep.l2_stats().misses())),
            ]),
        ),
        (
            "tlb",
            Json::obj([
                ("accesses", Json::Uint(rep.tlb_stats().accesses())),
                ("misses", Json::Uint(rep.tlb_stats().misses())),
            ]),
        ),
        (
            "degraded",
            Json::obj([
                ("worker_panics", Json::Uint(deg.worker_panics)),
                ("fallback_lanes", Json::Uint(deg.fallback_lanes)),
                ("lost_lanes", Json::Uint(deg.lost_lanes)),
                ("repaired_bufs", Json::Uint(deg.repaired_bufs)),
            ]),
        ),
        ("sampled", Json::Bool(false)),
        ("shared_store", Json::Bool(use_store)),
    ]))
}

/// Answers an over-full-budget replay by representative-interval sampled
/// simulation (cc-sample via [`SampledReplay`]): fingerprint-cluster the
/// interval stream, replay only cluster representatives behind warmup
/// windows, extrapolate, and report coverage/confidence/error-bound
/// alongside the usual stats. Results are cached in the store's sampled
/// side cache keyed by workload *and* sampling configuration, so a warm
/// server answers without generating a single event. Success replies
/// stay deterministic and byte-stable: the sampling pipeline is
/// seeded-deterministic, the reply carries no cache-provenance field,
/// and a decoded cache hit reproduces the cold reply's bytes.
fn run_sampled(
    env: &OpEnv<'_>,
    r: &ReplaySpec,
    chaos: &ChaosPlan,
    over: u64,
    est_events: u64,
) -> OpResult {
    if est_events > env.limits.max_sampled_events / over.max(1) {
        return Err((
            ErrorKind::OverBudget,
            format!(
                "estimated {est_events} replay events exceed even the sampled-simulation \
                 budget of {} — sampled capacity is bounded by the fingerprint pass \
                 (\"Improving the Representativeness of Simulation Intervals for the \
                 Cache Memory System\", PAPERS.md)",
                env.limits.max_sampled_events
            ),
        ));
    }

    // No store-quota charge: a sampled run writes a <1 KB result into
    // the sampled side cache, never generated-trace bytes.
    let machine = MachineConfig::ultrasparc_e5000();
    let tree = build_bst(&machine, r.keys, r.spec);
    let key = r.spec.fold_key(TraceKey::new(r.tag));
    let spec = SampledSpec {
        interval_searches: SAMPLE_INTERVAL_SEARCHES,
        ..SampledSpec::default()
    };
    let mut replay = SampledReplay::new(
        machine,
        r.keys,
        r.seed,
        r.shards as usize,
        Some(env.store),
        key,
        spec,
    );
    if chaos.sample_poison > 0 {
        replay.poison((0..chaos.sample_poison as usize).collect::<BTreeSet<_>>());
    }
    // The cancel hook doubles as the mid-request chaos trigger: polled
    // between intervals, so the panic fires with fingerprint state (and
    // possibly store writes) in flight — the same "at least one
    // segment ran" point the full path detonates at.
    let polls = AtomicU64::new(0);
    let cancel = || {
        if chaos.panic_mid && polls.fetch_add(1, Ordering::Relaxed) == 1 {
            panic!("chaos: injected mid-request worker panic");
        }
        env.gate.check().is_err()
    };
    replay.cancel_with(&cancel);
    let result = replay.run(r.searches, |k, buf| {
        tree.search(k, buf, false);
    });
    let result = match result {
        Ok(result) => result,
        Err(Cancelled) => {
            return Err(env.gate.check().expect_err("sampled replay cancelled"));
        }
    };
    let c = &result.stats.counters;
    Ok(Json::obj([
        ("searches", Json::Uint(r.searches)),
        ("keys", Json::Uint(r.keys)),
        ("shards", Json::Uint(r.shards)),
        ("events", Json::Uint(c.events)),
        ("insts", Json::Uint(c.insts)),
        ("memory_cycles", Json::Uint(c.memory_cycles)),
        (
            "avg_us_per_search",
            Json::Float(result.avg_us_per_search(&machine)),
        ),
        (
            "l1",
            Json::obj([
                (
                    "hits",
                    Json::Uint(c.l1_accesses.saturating_sub(c.l1_misses)),
                ),
                ("misses", Json::Uint(c.l1_misses)),
            ]),
        ),
        (
            "l2",
            Json::obj([
                (
                    "hits",
                    Json::Uint(c.l2_accesses.saturating_sub(c.l2_misses)),
                ),
                ("misses", Json::Uint(c.l2_misses)),
            ]),
        ),
        (
            "tlb",
            Json::obj([
                ("accesses", Json::Uint(c.tlb_accesses)),
                ("misses", Json::Uint(c.tlb_misses)),
            ]),
        ),
        ("sampled", Json::Bool(true)),
        (
            "sample",
            Json::obj([
                ("intervals", Json::Uint(result.intervals as u64)),
                ("representatives", Json::Uint(result.representatives as u64)),
                ("interval_searches", Json::Uint(result.interval_searches)),
                ("coverage_pct", Json::Float(result.stats.coverage_pct)),
                ("confidence_pct", Json::Float(result.stats.confidence_pct)),
                ("error_bound_pct", Json::Float(result.stats.error_bound_pct)),
                (
                    "fallback_representatives",
                    Json::Uint(result.degradation.fallback_representatives),
                ),
                (
                    "lost_representatives",
                    Json::Uint(result.degradation.lost_representatives),
                ),
            ]),
        ),
        ("shared_store", Json::Bool(true)),
    ]))
}

fn replay_params(
    env: &OpEnv<'_>,
    params: &Json,
    tag: &'static str,
) -> Result<ReplaySpec, (ErrorKind, String)> {
    let keys = param_u64(params, "keys", 4095)?;
    if keys == 0 || keys > env.limits.max_keys {
        return Err(bad(format!(
            "`keys` must be in 1..={}",
            env.limits.max_keys
        )));
    }
    let searches = param_u64(params, "searches", 20_000)?;
    if searches == 0 {
        return Err(bad("`searches` must be positive"));
    }
    let shards = param_u64(params, "shards", 1)?;
    if shards == 0 || shards > env.limits.max_shards {
        return Err(bad(format!(
            "`shards` must be in 1..={}",
            env.limits.max_shards
        )));
    }
    let seed = param_u64(params, "seed", 0x51EE7)?;
    let layout_seed = param_u64(params, "layout_seed", 0xA11)?;
    let layout = param_str(params, "layout")?.unwrap_or("random");
    Ok(ReplaySpec {
        keys,
        searches,
        seed,
        shards,
        spec: layout_spec(layout, layout_seed)?,
        tag,
    })
}

/// Honors chaos parameters when allowed; refuses them otherwise so a
/// production server cannot be detonated from the wire. Returns the
/// remaining [`ChaosPlan`] after applying `chaos_panic` (panic now) and
/// `chaos_sleep_ms` (a gate-checked stall, used by tests to fill the
/// admission queue and exercise deadlines deterministically);
/// `chaos_panic_mid` and `chaos_sample_poison` detonate later, inside
/// the replay they target.
fn chaos_prelude(env: &OpEnv<'_>, params: &Json) -> Result<ChaosPlan, (ErrorKind, String)> {
    let now = param_flag(params, "chaos_panic");
    let mid = param_flag(params, "chaos_panic_mid");
    let sample_poison = param_u64(params, "chaos_sample_poison", 0)?;
    let sleep_ms = param_u64(params, "chaos_sleep_ms", 0)?;
    if (now || mid || sample_poison > 0 || sleep_ms > 0) && !env.allow_chaos {
        return Err(bad(
            "chaos parameters are refused unless the server runs with --allow-chaos",
        ));
    }
    if now {
        panic!("chaos: injected worker panic at request start");
    }
    let until = Instant::now() + std::time::Duration::from_millis(sleep_ms);
    while Instant::now() < until {
        env.gate.check()?;
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    Ok(ChaosPlan {
        panic_mid: mid,
        sample_poison,
    })
}

/// `simulate`: one replay of a tree-search workload.
pub fn simulate(env: &OpEnv<'_>, params: &Json) -> OpResult {
    let chaos = chaos_prelude(env, params)?;
    let spec = replay_params(env, params, "serve-simulate")?;
    run_replay(env, &spec, &chaos, 1)
}

/// `morph`: replay the same workload on the unorganized layout and on
/// the ccmorph C-tree, and report the predicted deltas.
///
/// With a `transform` parameter (`reorder` | `hot_cold` | `soa`) the op
/// compares *field-level* layouts instead: the AoS fat-node tree versus
/// the requested cc-core field transform, both legs run with field
/// attribution so the reply carries per-field before/after miss counts
/// alongside the usual predicted deltas.
pub fn morph(env: &OpEnv<'_>, params: &Json) -> OpResult {
    let chaos = chaos_prelude(env, params)?;
    if let Some(name) = param_str(params, "transform")? {
        return field_morph(env, params, name, &chaos);
    }
    let mut base = replay_params(env, params, "serve-morph")?;
    base.spec.morph = false;
    let mut morphed = replay_params(env, params, "serve-morph")?;
    morphed.spec.morph = true;

    // Both budgets cover both replays (`over = 2`): each leg flips to
    // sampled — or is refused — at half the single-replay thresholds.
    let before = run_replay(env, &base, &chaos, 2)?;
    let quiet = ChaosPlan {
        panic_mid: false,
        sample_poison: 0,
    };
    let after = run_replay(env, &morphed, &quiet, 2)?;
    let miss = |r: &Json, lvl: &str| {
        r.get(lvl)
            .and_then(|l| l.get("misses"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let delta_pct = |b: u64, a: u64| {
        if b == 0 {
            0.0
        } else {
            (b as f64 - a as f64) / b as f64 * 100.0
        }
    };
    let us = |r: &Json| match r.get("avg_us_per_search") {
        Some(Json::Float(v)) => *v,
        _ => 0.0,
    };
    let speedup = if us(&after) > 0.0 {
        us(&before) / us(&after)
    } else {
        0.0
    };
    Ok(Json::obj([
        (
            "predicted_l1_miss_delta_pct",
            Json::Float(delta_pct(miss(&before, "l1"), miss(&after, "l1"))),
        ),
        (
            "predicted_l2_miss_delta_pct",
            Json::Float(delta_pct(miss(&before, "l2"), miss(&after, "l2"))),
        ),
        ("predicted_speedup", Json::Float(speedup)),
        ("base", before),
        ("morphed", after),
    ]))
}

/// The stats object for one leg of a field-transform comparison.
fn field_leg_json(leg: &FieldLegStats) -> Json {
    Json::obj([
        ("avg_us_per_search", Json::Float(leg.avg_us_per_search)),
        ("hot_stride", Json::Uint(leg.hot_stride)),
        (
            "l1",
            Json::obj([
                ("hits", Json::Uint(leg.l1_hits)),
                ("misses", Json::Uint(leg.l1_misses)),
            ]),
        ),
        (
            "l2",
            Json::obj([
                ("hits", Json::Uint(leg.l2_hits)),
                ("misses", Json::Uint(leg.l2_misses)),
            ]),
        ),
    ])
}

/// `morph` with `transform`: AoS baseline versus one cc-core field
/// transform on the fat-node search workload, field attribution on both
/// legs, per-field before/after miss deltas in the reply.
fn field_morph(env: &OpEnv<'_>, params: &Json, name: &str, chaos: &ChaosPlan) -> OpResult {
    let case = match name {
        "reorder" => FieldCase::Reorder,
        "hot_cold" => FieldCase::HotCold,
        "soa" => FieldCase::Soa,
        other => {
            return Err(bad(format!(
                "unknown transform `{other}` (expected reorder|hot_cold|soa)"
            )))
        }
    };
    let keys = param_u64(params, "keys", 4095)?;
    if keys == 0 || keys > env.limits.max_keys {
        return Err(bad(format!(
            "`keys` must be in 1..={}",
            env.limits.max_keys
        )));
    }
    let searches = param_u64(params, "searches", 20_000)?;
    if searches == 0 {
        return Err(bad("`searches` must be positive"));
    }
    let seed = param_u64(params, "seed", 0x51EE7)?;
    // Field-transform comparisons have no sampled fallback (the field
    // funnel needs the full per-address stream), so the full-replay
    // budget is the hard ceiling — halved, because one request runs two
    // attributed legs.
    let est_events = estimate_events(keys, searches);
    if est_events > env.limits.max_replay_events / 2 {
        return Err((
            ErrorKind::OverBudget,
            format!(
                "estimated {est_events} events per leg exceed the field-transform budget \
                 of {} (field-attributed comparisons always run the full replay — \
                 shrink `searches` or `keys`)",
                env.limits.max_replay_events / 2
            ),
        ));
    }

    // The mid-request chaos switch detonates after the first chunk of
    // the first leg, matching the full path's "at least one segment
    // ran" point.
    let machine = MachineConfig::ultrasparc_e5000();
    let polls = AtomicU64::new(0);
    let base_check = || {
        if chaos.panic_mid && polls.fetch_add(1, Ordering::Relaxed) == 1 {
            panic!("chaos: injected mid-request worker panic");
        }
        env.gate.check()
    };
    let base = run_field_leg(&machine, keys, FieldCase::Aos, searches, seed, base_check)?;
    let after = run_field_leg(&machine, keys, case, searches, seed, || env.gate.check())?;

    let delta_pct = |b: u64, a: u64| {
        if b == 0 {
            0.0
        } else {
            (b as f64 - a as f64) / b as f64 * 100.0
        }
    };
    let fields = base
        .fields
        .iter()
        .zip(after.fields.iter())
        .map(|((name, b1, b2), (_, a1, a2))| {
            Json::obj([
                ("field", Json::str(name.clone())),
                ("l1_misses_before", Json::Uint(*b1)),
                ("l1_misses_after", Json::Uint(*a1)),
                ("l1_delta_pct", Json::Float(delta_pct(*b1, *a1))),
                ("l2_misses_before", Json::Uint(*b2)),
                ("l2_misses_after", Json::Uint(*a2)),
            ])
        })
        .collect();
    let speedup = if after.avg_us_per_search > 0.0 {
        base.avg_us_per_search / after.avg_us_per_search
    } else {
        0.0
    };
    Ok(Json::obj([
        ("transform", Json::str(case.name())),
        ("keys", Json::Uint(keys)),
        ("searches", Json::Uint(searches)),
        (
            "predicted_l1_miss_delta_pct",
            Json::Float(delta_pct(base.l1_misses, after.l1_misses)),
        ),
        (
            "predicted_l2_miss_delta_pct",
            Json::Float(delta_pct(base.l2_misses, after.l2_misses)),
        ),
        ("predicted_speedup", Json::Float(speedup)),
        ("base", field_leg_json(&base)),
        ("transformed", field_leg_json(&after)),
        ("fields", Json::Arr(fields)),
        ("sampled", Json::Bool(false)),
        ("shared_store", Json::Bool(false)),
    ]))
}

/// `audit`: run the layout auditor over a named scenario.
pub fn audit(env: &OpEnv<'_>, params: &Json) -> OpResult {
    chaos_prelude(env, params)?;
    let scenario = param_str(params, "scenario")?.ok_or_else(|| {
        bad("`scenario` is required (ccmorph-tree|malloc-tree|ccmalloc-list|malloc-list)")
    })?;
    let n = param_u64(params, "n", 1023)?;
    if n == 0 || n > env.limits.max_audit_n {
        return Err(bad(format!(
            "`n` must be in 1..={}",
            env.limits.max_audit_n
        )));
    }
    env.gate.check()?;
    let input = cc_audit::scenarios::build(scenario, n as usize)
        .ok_or_else(|| bad(format!("unknown scenario `{scenario}`")))?;
    let report = cc_audit::audit(&input, &cc_audit::AuditConfig::default());
    Ok(Json::obj([
        ("scenario", Json::str(scenario)),
        ("n", Json::Uint(n)),
        ("findings", Json::Uint(report.findings.len() as u64)),
        ("errors", Json::Uint(report.error_count() as u64)),
        ("clean", Json::Bool(report.is_clean())),
        ("report", Json::Str(report.to_json())),
    ]))
}

/// `lint`: static struct-layout analysis of client-supplied source.
pub fn lint(env: &OpEnv<'_>, params: &Json) -> OpResult {
    chaos_prelude(env, params)?;
    let source = param_str(params, "source")?.ok_or_else(|| bad("`source` is required"))?;
    if source.len() > env.limits.max_lint_bytes {
        return Err(bad(format!(
            "`source` is {} bytes; the limit is {}",
            source.len(),
            env.limits.max_lint_bytes
        )));
    }
    env.gate.check()?;
    let report = cc_lint::analyze_sources(
        &[("request.rs".to_string(), source.to_string())],
        &cc_lint::HotSpec::empty(),
        &cc_lint::LintConfig::default(),
    );
    Ok(Json::obj([
        ("findings", Json::Uint(report.findings.len() as u64)),
        (
            "structs_modeled",
            Json::Uint(report.stats.structs_modeled as u64),
        ),
        (
            "structs_skipped",
            Json::Uint(report.stats.structs_skipped as u64),
        ),
        ("report", Json::Str(report.to_json())),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn env_parts() -> (TraceStore, ServeLimits, SessionCtx) {
        (
            TraceStore::default(),
            ServeLimits::default(),
            SessionCtx::default(),
        )
    }

    fn far_gate() -> Gate {
        Gate::with_deadline(Instant::now() + Duration::from_secs(60))
    }

    #[test]
    fn simulate_is_deterministic_across_store_and_shards() {
        let (store, limits, session) = env_parts();
        let gate = far_gate();
        let noop = || {};
        let env = OpEnv {
            store: &store,
            limits: &limits,
            session: &session,
            gate: &gate,
            allow_chaos: false,
            quota_bypass: &noop,
        };
        let params = |shards: u64| {
            Json::obj([
                ("keys", Json::Uint(1023)),
                ("searches", Json::Uint(3000)),
                ("seed", Json::Uint(7)),
                ("shards", Json::Uint(shards)),
            ])
        };
        let a = simulate(&env, &params(1)).unwrap().encode();
        let b = simulate(&env, &params(1)).unwrap().encode();
        assert_eq!(a, b, "same request, same bytes (warm store)");
        // Shard count shows up only in the `shards` field; stats agree.
        let c = simulate(&env, &params(4)).unwrap();
        let a = Json::parse(&a).unwrap();
        assert_eq!(a.get("memory_cycles"), c.get("memory_cycles"));
        assert_eq!(a.get("l1"), c.get("l1"));
    }

    #[test]
    fn oversized_workload_is_refused_with_the_sampling_pointer() {
        let (store, limits, session) = env_parts();
        let gate = far_gate();
        let noop = || {};
        let env = OpEnv {
            store: &store,
            limits: &limits,
            session: &session,
            gate: &gate,
            allow_chaos: false,
            quota_bypass: &noop,
        };
        // Past even the sampled budget (200M searches × 22 events ≈
        // 4.4B estimated events > 2.4B): still a typed refusal.
        let params = Json::obj([
            ("keys", Json::Uint(1 << 19)),
            ("searches", Json::Uint(200_000_000)),
        ]);
        let (kind, msg) = simulate(&env, &params).unwrap_err();
        assert_eq!(kind, ErrorKind::OverBudget);
        assert!(
            msg.contains("Representativeness of Simulation Intervals"),
            "{msg}"
        );
    }

    #[test]
    fn over_full_budget_workload_gets_a_sampled_answer() {
        let (store, limits, session) = env_parts();
        let gate = far_gate();
        let noop = || {};
        let env = OpEnv {
            store: &store,
            limits: &limits,
            session: &session,
            gate: &gate,
            allow_chaos: false,
            quota_bypass: &noop,
        };
        // 250k searches × 10 events/search ≈ 2.5M estimated events:
        // past the 2.4M full-replay budget, well under the sampled one.
        let params = Json::obj([
            ("keys", Json::Uint(255)),
            ("searches", Json::Uint(250_000)),
            ("seed", Json::Uint(7)),
        ]);
        let a = simulate(&env, &params).unwrap();
        assert_eq!(a.get("sampled"), Some(&Json::Bool(true)));
        let sample = a.get("sample").expect("sample block");
        assert_eq!(sample.get("coverage_pct"), Some(&Json::Float(100.0)));
        let bound = match sample.get("error_bound_pct") {
            Some(Json::Float(v)) => *v,
            other => panic!("{other:?}"),
        };
        assert!(bound > 0.0, "an estimate must carry an error bound");
        assert_eq!(sample.get("fallback_representatives"), Some(&Json::Uint(0)));
        assert!(a.get("events").and_then(Json::as_u64).unwrap() > 2_400_000);
        assert_eq!(store.counters().sampled_puts, 1);

        // Warm repeat: answered from the sampled result cache, byte-stable.
        let b = simulate(&env, &params).unwrap();
        assert_eq!(
            a.encode(),
            b.encode(),
            "sampled replies must be byte-stable"
        );
        assert_eq!(store.counters().sampled_hits, 1);
    }

    #[test]
    fn chaos_sample_poison_degrades_to_fallbacks_with_counters() {
        let (store, limits, session) = env_parts();
        let gate = far_gate();
        let noop = || {};
        let env = OpEnv {
            store: &store,
            limits: &limits,
            session: &session,
            gate: &gate,
            allow_chaos: true,
            quota_bypass: &noop,
        };
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = simulate(
            &env,
            &Json::obj([
                ("keys", Json::Uint(255)),
                ("searches", Json::Uint(250_000)),
                ("seed", Json::Uint(7)),
                ("chaos_sample_poison", Json::Uint(2)),
            ]),
        )
        .unwrap();
        std::panic::set_hook(prev);
        assert_eq!(r.get("sampled"), Some(&Json::Bool(true)));
        let sample = r.get("sample").expect("sample block");
        let fallbacks = sample
            .get("fallback_representatives")
            .and_then(Json::as_u64)
            .unwrap();
        assert!(
            fallbacks >= 1,
            "poisoned representatives must degrade to counted fallbacks: {sample:?}"
        );
        // Faulted runs bypass the result cache in both directions.
        assert_eq!(store.counters().sampled_puts, 0);
    }

    #[test]
    fn expired_gate_cancels_between_segments() {
        let (store, limits, session) = env_parts();
        let gate = Gate::with_deadline(Instant::now() - Duration::from_millis(1));
        let noop = || {};
        let env = OpEnv {
            store: &store,
            limits: &limits,
            session: &session,
            gate: &gate,
            allow_chaos: false,
            quota_bypass: &noop,
        };
        let params = Json::obj([("keys", Json::Uint(255)), ("searches", Json::Uint(100))]);
        let (kind, _) = simulate(&env, &params).unwrap_err();
        assert_eq!(kind, ErrorKind::DeadlineExceeded);
    }

    #[test]
    fn quota_exhaustion_bypasses_the_store_but_keeps_results_identical() {
        let (store, mut limits, session) = env_parts();
        limits.store_quota_bytes = 1; // any request is over quota
        let gate = far_gate();
        let bypasses = AtomicU64::new(0);
        let on_bypass = || {
            bypasses.fetch_add(1, Ordering::Relaxed);
        };
        let env = OpEnv {
            store: &store,
            limits: &limits,
            session: &session,
            gate: &gate,
            allow_chaos: false,
            quota_bypass: &on_bypass,
        };
        let params = Json::obj([("keys", Json::Uint(511)), ("searches", Json::Uint(2000))]);
        let over = simulate(&env, &params).unwrap();
        assert_eq!(over.get("shared_store"), Some(&Json::Bool(false)));
        assert_eq!(bypasses.load(Ordering::Relaxed), 1);
        assert_eq!(store.counters().generations, 0, "store untouched");

        // An in-quota tenant gets byte-identical simulation results.
        let session2 = SessionCtx::default();
        let limits2 = ServeLimits::default();
        let env2 = OpEnv {
            store: &store,
            limits: &limits2,
            session: &session2,
            gate: &gate,
            allow_chaos: false,
            quota_bypass: &on_bypass,
        };
        let under = simulate(&env2, &params).unwrap();
        assert!(store.counters().generations > 0);
        assert_eq!(over.get("l1"), under.get("l1"));
        assert_eq!(over.get("memory_cycles"), under.get("memory_cycles"));
    }

    #[test]
    fn chaos_params_are_refused_without_allow_chaos() {
        let (store, limits, session) = env_parts();
        let gate = far_gate();
        let noop = || {};
        let env = OpEnv {
            store: &store,
            limits: &limits,
            session: &session,
            gate: &gate,
            allow_chaos: false,
            quota_bypass: &noop,
        };
        let params = Json::obj([("chaos_panic", Json::Bool(true))]);
        let (kind, _) = simulate(&env, &params).unwrap_err();
        assert_eq!(kind, ErrorKind::BadRequest);
    }

    #[test]
    fn morph_reports_a_positive_l2_delta_on_the_paper_workload() {
        let (store, limits, session) = env_parts();
        let gate = far_gate();
        let noop = || {};
        let env = OpEnv {
            store: &store,
            limits: &limits,
            session: &session,
            gate: &gate,
            allow_chaos: false,
            quota_bypass: &noop,
        };
        // The tree must exceed L2 for clustering to pay off — an
        // L2-resident tree sees only cold misses, which morphing cannot
        // remove (the same scale threshold fig5 reproduces).
        let params = Json::obj([
            ("keys", Json::Uint(65_535)),
            ("searches", Json::Uint(4_000)),
            ("seed", Json::Uint(3)),
        ]);
        let r = morph(&env, &params).unwrap();
        let delta = match r.get("predicted_l2_miss_delta_pct") {
            Some(Json::Float(v)) => *v,
            other => panic!("{other:?}"),
        };
        assert!(delta > 0.0, "ccmorph should cut L2 misses, got {delta}%");
    }

    #[test]
    fn field_morph_reports_per_field_deltas() {
        let (store, limits, session) = env_parts();
        let gate = far_gate();
        let noop = || {};
        let env = OpEnv {
            store: &store,
            limits: &limits,
            session: &session,
            gate: &gate,
            allow_chaos: false,
            quota_bypass: &noop,
        };
        let params = Json::obj([
            ("transform", Json::str("hot_cold")),
            ("keys", Json::Uint(4095)),
            ("searches", Json::Uint(4000)),
            ("seed", Json::Uint(7)),
        ]);
        let r = morph(&env, &params).unwrap();
        assert_eq!(r.get("transform"), Some(&Json::str("hot_cold")));
        let delta = match r.get("predicted_l1_miss_delta_pct") {
            Some(Json::Float(v)) => *v,
            other => panic!("{other:?}"),
        };
        assert!(delta > 0.0, "hot/cold split should cut L1 misses: {delta}%");
        let fields = match r.get("fields") {
            Some(Json::Arr(v)) => v,
            other => panic!("{other:?}"),
        };
        assert_eq!(fields.len(), 5, "every fat-node field is reported");
        let field = |name: &str| {
            fields
                .iter()
                .find(|f| f.get("field") == Some(&Json::str(name)))
                .unwrap_or_else(|| panic!("field {name} missing"))
        };
        assert!(
            field("key")
                .get("l1_misses_before")
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
        // Cold fields: never touched by searches, zero on both sides.
        for cold in ["meta", "payload"] {
            assert_eq!(
                field(cold).get("l1_misses_before"),
                Some(&Json::Uint(0)),
                "{cold}"
            );
            assert_eq!(field(cold).get("l1_misses_after"), Some(&Json::Uint(0)));
        }
        // The split leaves a 16-byte hot stride behind.
        assert_eq!(
            r.get("transformed").and_then(|t| t.get("hot_stride")),
            Some(&Json::Uint(16))
        );

        // Same request, same bytes.
        let again = morph(&env, &params).unwrap();
        assert_eq!(r.encode(), again.encode());
    }

    #[test]
    fn field_morph_refuses_bad_and_oversized_requests() {
        let (store, limits, session) = env_parts();
        let gate = far_gate();
        let noop = || {};
        let env = OpEnv {
            store: &store,
            limits: &limits,
            session: &session,
            gate: &gate,
            allow_chaos: false,
            quota_bypass: &noop,
        };
        let (kind, msg) =
            morph(&env, &Json::obj([("transform", Json::str("zorder"))])).unwrap_err();
        assert_eq!(kind, ErrorKind::BadRequest);
        assert!(msg.contains("reorder|hot_cold|soa"), "{msg}");

        let (kind, msg) = morph(
            &env,
            &Json::obj([
                ("transform", Json::str("soa")),
                ("keys", Json::Uint(1 << 19)),
                ("searches", Json::Uint(10_000_000)),
            ]),
        )
        .unwrap_err();
        assert_eq!(kind, ErrorKind::OverBudget);
        assert!(msg.contains("field-transform budget"), "{msg}");
    }

    #[test]
    fn audit_and_lint_round_trip() {
        let (store, limits, session) = env_parts();
        let gate = far_gate();
        let noop = || {};
        let env = OpEnv {
            store: &store,
            limits: &limits,
            session: &session,
            gate: &gate,
            allow_chaos: false,
            quota_bypass: &noop,
        };
        let a = audit(
            &env,
            &Json::obj([
                ("scenario", Json::str("ccmorph-tree")),
                ("n", Json::Uint(255)),
            ]),
        )
        .unwrap();
        assert_eq!(a.get("scenario"), Some(&Json::str("ccmorph-tree")));
        assert!(a.get("report").is_some());

        let l = lint(
            &env,
            &Json::obj([(
                "source",
                Json::str("pub struct Bad { a: u8, b: u64, c: u8, d: u64, e: u8, f: u64 }"),
            )]),
        )
        .unwrap();
        assert!(l.get("findings").and_then(Json::as_u64).unwrap() > 0);

        let (kind, _) = audit(&env, &Json::obj([("scenario", Json::str("nope"))])).unwrap_err();
        assert_eq!(kind, ErrorKind::BadRequest);
        let (kind, _) = lint(&env, &Json::obj([])).unwrap_err();
        assert_eq!(kind, ErrorKind::BadRequest);
    }
}
