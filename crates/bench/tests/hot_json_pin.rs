//! Byte-pins the hotness-spec artifacts `cc-profile` writes under
//! `CC_OBS_OUT`. These files are the bridge into `cc-lint --hot`: any
//! byte drift — key order, weight formatting, trailing newline — would
//! silently change what the static analyzer ranks, and a formatting
//! change would invalidate specs users have checked in. The whole run
//! is simulated, so for fixed arguments the bytes are exact.

use std::process::{Command, Stdio};

#[test]
fn profile_hot_specs_are_byte_stable() {
    let dir = std::env::temp_dir().join(format!("cc-hot-pin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let out = dir.join("obs.json");

    let status = Command::new(env!("CARGO_BIN_EXE_cc-profile"))
        .args(["4095", "6000"])
        .env("CC_OBS_OUT", &out)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("cc-profile spawns");
    assert!(status.success(), "cc-profile exited nonzero");

    let hot = std::fs::read_to_string(dir.join("obs.json.hot.json")).expect(".hot.json written");
    assert_eq!(
        hot, "{\n  \"Node.key\": 43955,\n  \"Node.left\": 43955,\n  \"Node.right\": 43955\n}\n",
        "region-join hotness spec bytes drifted"
    );

    let fieldhot = std::fs::read_to_string(dir.join("obs.json.fieldhot.json"))
        .expect(".fieldhot.json written");
    assert_eq!(
        fieldhot,
        "{\n  \"FatNode.key\": 60870,\n  \"FatNode.left\": 25444,\n  \"FatNode.right\": 25675\n}\n",
        "field heat map spec bytes drifted"
    );

    // Both artifacts must re-parse into the weights they serialize —
    // the `--hot` consumer sees exactly what the profiler measured.
    let spec = cc_lint::HotSpec::parse_json(&fieldhot).expect("fieldhot re-parses");
    assert_eq!(
        spec.struct_weight("FatNode"),
        Some(60870.0 + 25444.0 + 25675.0)
    );
    assert!(spec.field_hot("FatNode", "key"));
    assert!(!spec.field_hot("FatNode", "payload"));

    std::fs::remove_dir_all(&dir).ok();
}
