//! Observability must be invisible on stdout.
//!
//! The figure binaries' stdout is the reproduction artifact — tables
//! diffed against the paper, parsed by scripts, pinned by releases.
//! `CC_OBS_OUT` routes the metrics snapshot and span trace to files and
//! never writes a byte to stdout; these differential tests run a binary
//! both ways and require the two stdouts to be byte-identical (and the
//! observability files to actually appear).
//!
//! Only the fast binaries run here (the full figures take minutes in
//! debug builds); the invariant itself is structural — `write_obs_out`
//! has no stdout path — and this pins it end to end.

use std::path::PathBuf;
use std::process::Command;

fn run(bin: &str, args: &[&str], obs_out: Option<&PathBuf>) -> Vec<u8> {
    let mut cmd = Command::new(bin);
    cmd.args(args)
        // A checkpoint or trace-cache dir inherited from the caller's
        // environment would make the two runs legitimately diverge.
        .env_remove("CC_SWEEP_CHECKPOINT")
        .env_remove("CC_TRACE_CACHE");
    match obs_out {
        Some(path) => cmd.env("CC_OBS_OUT", path),
        None => cmd.env_remove("CC_OBS_OUT"),
    };
    let out = cmd.output().unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn assert_stdout_identical(bin: &str, args: &[&str], tag: &str) {
    let obs_path = std::env::temp_dir().join(format!("cc-obs-diff-{}-{tag}", std::process::id()));
    let plain = run(bin, args, None);
    let observed = run(bin, args, Some(&obs_path));
    assert!(
        obs_path.exists(),
        "{tag}: CC_OBS_OUT was set but no metrics file appeared"
    );
    let metrics = std::fs::read_to_string(&obs_path).expect("read metrics");
    assert!(
        metrics.starts_with('{') && metrics.ends_with('}'),
        "{tag}: metrics file is not a JSON object: {metrics:?}"
    );
    let _ = std::fs::remove_file(&obs_path);
    let trace_path = {
        let mut p = obs_path.into_os_string();
        p.push(".trace.json");
        PathBuf::from(p)
    };
    assert!(trace_path.exists(), "{tag}: span trace file missing");
    let _ = std::fs::remove_file(&trace_path);
    assert_eq!(
        plain, observed,
        "{tag}: stdout changed when CC_OBS_OUT was enabled"
    );
}

#[test]
fn table1_stdout_is_byte_identical_with_obs() {
    assert_stdout_identical(env!("CARGO_BIN_EXE_table1"), &[], "table1");
}

#[test]
fn table3_stdout_is_byte_identical_with_obs() {
    assert_stdout_identical(env!("CARGO_BIN_EXE_table3"), &[], "table3");
}

#[test]
fn cc_profile_stdout_is_byte_identical_with_obs() {
    assert_stdout_identical(
        env!("CARGO_BIN_EXE_cc-profile"),
        &["1023", "2000"],
        "cc-profile",
    );
}
