//! Experiment harness for the *Cache-Conscious Structure Layout*
//! reproduction: shared text-figure plumbing for the binaries that
//! regenerate each of the paper's tables and figures.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — simulation parameters |
//! | `table2` | Table 2 — benchmark characteristics |
//! | `table3` | Table 3 — technique trade-off summary |
//! | `fig5` | Figure 5 — tree microbenchmark search times |
//! | `fig6` | Figure 6 — RADIANCE & VIS normalized time |
//! | `fig7` | Figure 7 — Olden stall breakdowns (+ §4.4 memory overheads) |
//! | `fig10` | Figure 10 — predicted vs measured C-tree speedup |
//! | `control` | §4.4 control experiment — ccmalloc with null hints |
//! | `ablation` | design-choice sweeps (hot fraction, cluster kind, strategy) |
//!
//! Run any of them with `cargo run --release -p cc-bench --bin <name>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod field;
pub mod obs;
pub mod replay;
pub mod sample;

use cc_sim::Breakdown;

/// Renders a horizontal text bar of `pct` percent (100% = `width` chars).
pub fn bar(pct: f64, width: usize) -> String {
    let filled = ((pct / 100.0) * width as f64).round().max(0.0) as usize;
    let mut s = String::with_capacity(filled + 2);
    for _ in 0..filled {
        s.push('█');
    }
    s
}

/// Prints one Figure 6/7-style stacked bar: normalized total plus the
/// busy / inst / data / store split in percent of the *base* total.
pub fn print_breakdown_row(label: &str, b: &Breakdown, base: &Breakdown) {
    let scale = |x: u64| 100.0 * x as f64 / base.total().max(1) as f64;
    let total = b.normalized_to(base);
    println!(
        "  {label:<22} {:>6.1}  |{:<52}| busy {:>5.1} inst {:>4.1} data {:>5.1} store {:>4.1}",
        total,
        bar(total, 50),
        scale(b.busy),
        scale(b.inst_stall),
        scale(b.data_stall),
        scale(b.store_stall),
    );
}

/// Prints a figure/table header in a consistent style.
pub fn header(title: &str, subtitle: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    if !subtitle.is_empty() {
        println!("{subtitle}");
    }
    println!("{}", "=".repeat(78));
}

/// Formats a byte count as a human-readable string.
pub fn human_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(100.0, 10).chars().count(), 10);
        assert_eq!(bar(50.0, 10).chars().count(), 5);
        assert_eq!(bar(0.0, 10).chars().count(), 0);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KB");
        assert_eq!(human_bytes(3 << 20), "3.0 MB");
    }
}
