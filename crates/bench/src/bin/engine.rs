//! `cc-bench-engine` — measures the simulator engine itself: the scalar
//! reference path ([`MemorySink`]) versus the batched fast path
//! ([`MemorySystem::access_batch`]) consuming identical Figure 5 search
//! traces.
//!
//! Each cell records one fig5 trace (a BST pointer chase over a given
//! layout and tree size), checks the two engines agree bit-for-bit on
//! statistics and cycle totals, and then times them. The batched engine is
//! timed the way the sweep harness uses it: the trace is packed once into
//! coalesced [`TraceBuf`] chunks (instruction/branch runs folded into tick
//! counts) outside the timed region, and the timed work is draining those
//! chunks — packing, like recording, happens once per trace while replays
//! happen once per (scheme × trial × machine) cell.
//!
//! Timing interleaves the two engines round-robin and reports per-engine
//! minima, so slow drifts in host load hit both variants equally instead
//! of biasing whichever ran second.
//!
//! Results go to stdout and, machine-readably, to `BENCH_sim.json`
//! (override with `--out <path>`). `--quick` shrinks trees and sample
//! counts for CI smoke runs.
//!
//! Exit status is nonzero if the batched engine fails to beat the scalar
//! engine on any trace — a performance regression gate, enforced in CI.

use cc_bench::header;
use cc_core::ccmorph::CcMorphParams;
use cc_core::cluster::Order;
use cc_core::rng::SplitMix64;
use cc_sim::batch::{BatchCursor, BatchSink, TraceBuf};
use cc_sim::event::{Event, TraceBuffer};
use cc_sim::{MachineConfig, MemorySink, MemorySystem};
use cc_trees::bst::Bst;
use criterion::black_box;
use std::io::Write;
use std::time::Instant;

/// How the recorded tree is laid out before searching — the fig5 variants.
#[derive(Clone, Copy)]
enum Layout {
    /// Allocation (build) order, untouched.
    Allocation,
    /// Depth-first sequential repack.
    DepthFirst,
    /// Uniformly random placement.
    Random(u64),
    /// `ccmorph` clustering + coloring — the paper's transparent C-tree.
    CTree,
}

impl Layout {
    fn label(self) -> &'static str {
        match self {
            Layout::Allocation => "allocation",
            Layout::DepthFirst => "depth-first",
            Layout::Random(_) => "random",
            Layout::CTree => "ctree",
        }
    }
}

struct CaseSpec {
    name: &'static str,
    layout: Layout,
    /// Tree has `2^bits - 1` keys (a complete BST).
    bits: u32,
    searches: u64,
    sw_prefetch: bool,
}

struct Timing {
    name: &'static str,
    layout: &'static str,
    keys: u64,
    events: usize,
    memory_refs: usize,
    scalar_ns: f64,
    batched_ns: f64,
    scalar_refs_per_sec: f64,
    batched_refs_per_sec: f64,
    speedup: f64,
}

/// Records `searches` random BST searches against the given layout into a
/// replayable trace. The RNG seed matches fig5's measurement loop, so this
/// is literally the figure's event stream.
fn record_trace(machine: &MachineConfig, spec: &CaseSpec) -> TraceBuffer {
    let n = (1u64 << spec.bits) - 1;
    let mut t = Bst::build_complete(n);
    match spec.layout {
        Layout::Allocation => {}
        Layout::DepthFirst => t.layout_sequential(Order::DepthFirst),
        Layout::Random(seed) => t.layout_sequential(Order::Random { seed }),
        Layout::CTree => {
            let mut vs = cc_heap::VirtualSpace::new(machine.page_bytes);
            let params = CcMorphParams::clustering_and_coloring(machine, cc_trees::BST_NODE_BYTES);
            let _ = t.morph(&mut vs, &params);
        }
    }
    let mut buf = TraceBuffer::new();
    let mut rng = SplitMix64::new(0x51EE7);
    for _ in 0..spec.searches {
        let key = 2 * rng.below(n);
        t.search(key, &mut buf, spec.sw_prefetch);
    }
    buf
}

/// Packs a recorded trace into coalesced fixed-capacity chunks: runs of
/// instruction/branch events fold into the preceding entry's tick count
/// (exactly what [`BatchSink`] does during replay, done once up front).
fn pack_chunks(trace: &TraceBuffer) -> Vec<TraceBuf> {
    let mut chunks = Vec::new();
    let mut cur = TraceBuf::with_capacity(4096);
    let mut run = 0u64;
    for &ev in trace.events() {
        match ev {
            Event::Inst(_) | Event::Branch(_) => run += 1,
            _ => {
                if run > 0 {
                    cur.push_ticks(run);
                    run = 0;
                }
                if cur.is_full() {
                    chunks.push(std::mem::replace(&mut cur, TraceBuf::with_capacity(4096)));
                }
                cur.push(ev);
            }
        }
    }
    if run > 0 {
        cur.push_ticks(run);
    }
    if !cur.is_empty() {
        chunks.push(cur);
    }
    chunks
}

/// Replays the trace through the scalar reference sink; returns cycles as
/// the live output for `black_box`.
fn run_scalar(machine: &MachineConfig, trace: &TraceBuffer) -> u64 {
    let mut sink = MemorySink::new(*machine);
    trace.replay(&mut sink);
    sink.memory_cycles()
}

/// Drains prepacked chunks through the batched fast path.
fn run_batched(machine: &MachineConfig, chunks: &[TraceBuf]) -> u64 {
    let mut sys = MemorySystem::new(*machine);
    let mut cursor = BatchCursor::new();
    let mut now = 0u64;
    let mut cycles = 0u64;
    for c in chunks {
        let out = sys.access_batch(c, now, &mut cursor);
        now += out.events;
        cycles += out.cycles;
    }
    cycles
}

/// The engines must agree bit-for-bit before their speeds are compared:
/// the scalar sink, the public [`BatchSink`] (which packs and drains
/// incrementally), and the prepacked chunk drain that actually gets timed
/// must all produce identical statistics and cycle totals.
fn assert_engines_agree(
    machine: &MachineConfig,
    name: &str,
    trace: &TraceBuffer,
    chunks: &[TraceBuf],
) {
    let mut scalar = MemorySink::new(*machine);
    trace.replay(&mut scalar);
    let mut batched = BatchSink::new(*machine);
    trace.replay(&mut batched);
    batched.flush();
    assert_eq!(
        batched.system().l1_stats(),
        scalar.system().l1_stats(),
        "{name}: L1 stats diverged between engines"
    );
    assert_eq!(
        batched.system().l2_stats(),
        scalar.system().l2_stats(),
        "{name}: L2 stats diverged between engines"
    );
    assert_eq!(
        batched.system().tlb_stats(),
        scalar.system().tlb_stats(),
        "{name}: TLB stats diverged between engines"
    );
    assert_eq!(
        batched.memory_cycles(),
        scalar.memory_cycles(),
        "{name}: cycle totals diverged between engines"
    );

    // The prepacked drain is what the timer runs; hold it to the same bar.
    let mut sys = MemorySystem::new(*machine);
    let mut cursor = BatchCursor::new();
    let mut now = 0u64;
    let mut cycles = 0u64;
    for c in chunks {
        let out = sys.access_batch(c, now, &mut cursor);
        now += out.events;
        cycles += out.cycles;
    }
    assert_eq!(
        cycles,
        scalar.memory_cycles(),
        "{name}: prepacked drain cycles diverged from scalar"
    );
    assert_eq!(
        sys.l1_stats(),
        scalar.system().l1_stats(),
        "{name}: prepacked drain L1 stats diverged from scalar"
    );
    assert_eq!(
        sys.l2_stats(),
        scalar.system().l2_stats(),
        "{name}: prepacked drain L2 stats diverged from scalar"
    );
    assert_eq!(
        sys.tlb_stats(),
        scalar.system().tlb_stats(),
        "{name}: prepacked drain TLB stats diverged from scalar"
    );
}

fn json_escape_free(s: &str) -> &str {
    // Names are static identifiers; assert rather than escape.
    assert!(s
        .chars()
        .all(|c| c.is_ascii_graphic() && c != '"' && c != '\\'));
    s
}

fn write_json(path: &str, mode: &str, timings: &[Timing]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"cc-bench-engine\",")?;
    writeln!(f, "  \"mode\": \"{mode}\",")?;
    writeln!(f, "  \"machine\": \"ultrasparc_e5000\",")?;
    writeln!(f, "  \"traces\": [")?;
    for (i, t) in timings.iter().enumerate() {
        writeln!(f, "    {{")?;
        writeln!(f, "      \"name\": \"{}\",", json_escape_free(t.name))?;
        writeln!(f, "      \"layout\": \"{}\",", json_escape_free(t.layout))?;
        writeln!(f, "      \"keys\": {},", t.keys)?;
        writeln!(f, "      \"events\": {},", t.events)?;
        writeln!(f, "      \"memory_refs\": {},", t.memory_refs)?;
        writeln!(f, "      \"scalar_ns_per_replay\": {:.0},", t.scalar_ns)?;
        writeln!(f, "      \"batched_ns_per_replay\": {:.0},", t.batched_ns)?;
        writeln!(
            f,
            "      \"scalar_refs_per_sec\": {:.0},",
            t.scalar_refs_per_sec
        )?;
        writeln!(
            f,
            "      \"batched_refs_per_sec\": {:.0},",
            t.batched_refs_per_sec
        )?;
        writeln!(f, "      \"speedup\": {:.2}", t.speedup)?;
        writeln!(f, "    }}{}", if i + 1 < timings.len() { "," } else { "" })?;
    }
    writeln!(f, "  ],")?;
    let headline = timings
        .iter()
        .find(|t| t.name == "fig5-pointer-chase")
        .map(|t| t.speedup)
        .unwrap_or(f64::NAN);
    writeln!(f, "  \"pointer_chase_speedup\": {headline:.2}")?;
    writeln!(f, "}}")?;
    Ok(())
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_sim.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: cc-bench-engine [--quick] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let machine = MachineConfig::ultrasparc_e5000();
    // Cells follow fig5's checkpoints: the ~1000-node tree at the figure's
    // left edge (the headline pointer chase, over the paper's own C-tree
    // layout) up to the 2^21-node tree at its right edge, plus the other
    // layouts and a software-prefetch trace so the batched engine's
    // in-flight-aware slow path is timed and gated too.
    let (cases, samples): (Vec<CaseSpec>, usize) = if quick {
        (
            vec![
                CaseSpec {
                    name: "fig5-pointer-chase",
                    layout: Layout::CTree,
                    bits: 10,
                    searches: 4_000,
                    sw_prefetch: false,
                },
                CaseSpec {
                    name: "fig5-ctree-full",
                    layout: Layout::CTree,
                    bits: 13,
                    searches: 4_000,
                    sw_prefetch: false,
                },
                CaseSpec {
                    name: "fig5-dfs",
                    layout: Layout::DepthFirst,
                    bits: 13,
                    searches: 4_000,
                    sw_prefetch: false,
                },
                CaseSpec {
                    name: "fig5-random-clustered",
                    layout: Layout::Random(0xA11),
                    bits: 11,
                    searches: 4_000,
                    sw_prefetch: false,
                },
                CaseSpec {
                    name: "fig5-prefetch",
                    layout: Layout::Allocation,
                    bits: 11,
                    searches: 1_000,
                    sw_prefetch: true,
                },
            ],
            4,
        )
    } else {
        (
            vec![
                CaseSpec {
                    name: "fig5-pointer-chase",
                    layout: Layout::CTree,
                    bits: 10,
                    searches: 40_000,
                    sw_prefetch: false,
                },
                CaseSpec {
                    name: "fig5-ctree-full",
                    layout: Layout::CTree,
                    bits: 21,
                    searches: 40_000,
                    sw_prefetch: false,
                },
                CaseSpec {
                    name: "fig5-dfs",
                    layout: Layout::DepthFirst,
                    bits: 21,
                    searches: 40_000,
                    sw_prefetch: false,
                },
                CaseSpec {
                    name: "fig5-random-clustered",
                    layout: Layout::Random(0xA11),
                    bits: 14,
                    searches: 40_000,
                    sw_prefetch: false,
                },
                CaseSpec {
                    name: "fig5-prefetch",
                    layout: Layout::Allocation,
                    bits: 14,
                    searches: 10_000,
                    sw_prefetch: true,
                },
            ],
            12,
        )
    };

    header(
        "Engine benchmark: scalar vs batched trace replay",
        &format!(
            "fig5 search traces, scalar sink vs prepacked batch drain ({} mode)",
            if quick { "quick" } else { "full" },
        ),
    );

    let mut timings = Vec::new();
    for spec in &cases {
        let keys = (1u64 << spec.bits) - 1;
        eprintln!(
            "recording {} ({} layout, {keys} keys, {} searches)…",
            spec.name,
            spec.layout.label(),
            spec.searches
        );
        let trace = record_trace(&machine, spec);
        let chunks = pack_chunks(&trace);
        assert_engines_agree(&machine, spec.name, &trace, &chunks);

        // Round-robin the two engines and keep per-engine minima, so any
        // slow drift in host load is shared instead of biasing one side.
        let mut scalar_best = f64::MAX;
        let mut batched_best = f64::MAX;
        for _ in 0..samples {
            let start = Instant::now();
            black_box(run_scalar(black_box(&machine), black_box(&trace)));
            scalar_best = scalar_best.min(start.elapsed().as_secs_f64());
            let start = Instant::now();
            black_box(run_batched(black_box(&machine), black_box(&chunks)));
            batched_best = batched_best.min(start.elapsed().as_secs_f64());
        }

        let memory_refs = trace.memory_refs();
        let scalar_ns = scalar_best * 1e9;
        let batched_ns = batched_best * 1e9;
        timings.push(Timing {
            name: spec.name,
            layout: spec.layout.label(),
            keys,
            events: trace.events().len(),
            memory_refs,
            scalar_ns,
            batched_ns,
            scalar_refs_per_sec: memory_refs as f64 / scalar_best,
            batched_refs_per_sec: memory_refs as f64 / batched_best,
            speedup: scalar_ns / batched_ns,
        });
    }

    println!(
        "\n{:<24}{:>12}{:>12}{:>18}{:>18}{:>9}",
        "trace", "layout", "mem refs", "scalar refs/s", "batched refs/s", "speedup"
    );
    for t in &timings {
        println!(
            "{:<24}{:>12}{:>12}{:>18.0}{:>18.0}{:>8.2}x",
            t.name,
            t.layout,
            t.memory_refs,
            t.scalar_refs_per_sec,
            t.batched_refs_per_sec,
            t.speedup
        );
    }

    let mode = if quick { "quick" } else { "full" };
    if let Err(e) = write_json(&out_path, mode, &timings) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out_path}");

    let mut failed = false;
    for t in &timings {
        if t.batched_refs_per_sec < t.scalar_refs_per_sec {
            eprintln!(
                "REGRESSION: {} batched ({:.0} refs/s) is slower than scalar ({:.0} refs/s)",
                t.name, t.batched_refs_per_sec, t.scalar_refs_per_sec
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
