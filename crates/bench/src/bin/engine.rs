//! `cc-bench-engine` — measures the simulator engine itself: the scalar
//! reference path ([`MemorySink`]), the batched fast path
//! ([`MemorySystem::access_batch`]), and the set-sharded parallel path
//! ([`cc_sim::ShardedReplayer`]) consuming identical Figure 5 search
//! traces.
//!
//! Each cell records one fig5 trace (a BST pointer chase over a given
//! layout and tree size), checks the three engines agree bit-for-bit on
//! statistics and cycle totals, and then times them. Replay inputs are
//! prepared the way the sweep harness prepares them — packed (and, for
//! the sharded engine, set-split) once outside the timed region — because
//! packing and splitting happen once per trace while replays happen once
//! per (scheme × trial × machine) cell. Traces themselves come from the
//! content-addressed [`TraceStore`]: re-running the benchmark with
//! `CC_TRACE_CACHE=dir` set skips recording entirely on warm keys.
//!
//! The sharded engine is reported on two clocks:
//!
//! * `sharded_ns_per_replay` — the *modeled* parallel replay time: each
//!   shard lane is run serially on the caller thread (pure uncontended
//!   compute), and the replay time is the critical path, the slowest
//!   single lane (or the serial TLB lane). This is the replay time on a
//!   machine with one core per shard, and it is stable no matter how
//!   oversubscribed the measuring host is.
//! * `sharded_wall_ns_per_replay` — actual wall time of the threaded
//!   replay on this host, reported alongside the host's core count for
//!   context (on a single-core host it can exceed the batched time; the
//!   threads just take turns).
//!
//! Timing interleaves the engines round-robin across `CC_BENCH_REPEATS`
//! passes (default 12 full / 5 quick, floor 5) and reports the
//! per-engine *median* plus the full spread as a percentage of that
//! median. Round-robin means slow drifts in host load hit all variants
//! equally; medians mean one lucky or unlucky pass can't set the
//! reported number. The obs overhead is computed *pairwise*: each
//! repeat's obs-enabled pass is compared against the plain pass of the
//! same round-robin lap (so a host hiccup between laps cancels out
//! instead of showing up as phantom overhead), the reported
//! `obs_overhead_pct` is the median of those paired deltas floored at
//! zero — the hooks cannot make replay *faster*, so a negative median
//! is measurement noise, not a result — and the unfloored median ships
//! beside it as `obs_overhead_raw_pct` so the flooring is auditable.
//! A large spread is the benchmark telling you the host was busy —
//! rerun before trusting small deltas.
//!
//! The artifact also carries a `sampled_sim` block: the cc-sample
//! representative-interval pipeline against the full replay of the same
//! search stream, as an error-vs-speedup curve over cluster counts plus
//! a headline `sampled_speedup_vs_batched` at the best operating point
//! whose worst-counter extrapolation error stays within the calibrated
//! 2% bound. In full mode the workload is production-scale (beyond
//! what cc-serve's full-replay budget admits) and CI gates both the
//! error bound and a ≥ 10x sampled speedup; quick mode gates the error
//! bound only, since a short trace has too few intervals for sampling
//! to pay.
//!
//! A `field_layout` block carries the fig5-style field-transform sweep:
//! the fat-node tree under AoS, hot-prefix reorder, hot/cold split, and
//! SoA, measured in deterministic simulated time on a search and a scan
//! workload, with a headline `field_layout_speedup_vs_aos` (SoA over AoS
//! on the array-ish scan) gated > 1.0 alongside a hot/cold-beats-AoS
//! search gate.
//!
//! Results go to stdout and, machine-readably, to `BENCH_sim.json`
//! (override with `--out <path>`), with a per-trace wall-vs-modeled
//! table beside it (`<out stem>.wall.txt`). `--quick` shrinks trees and
//! sample counts for CI smoke runs.
//!
//! Exit status is nonzero if the batched engine fails to beat the scalar
//! engine, or the sharded critical path fails to beat the scalar engine,
//! on any trace — a performance regression gate, enforced in CI. On
//! hosts with at least four cores there is a third gate: the *threaded*
//! sharded replay must beat the batched drain by ≥ 2x wall-clock on the
//! headline trace. Narrower hosts can't run four lanes at once, so the
//! wall gate is skipped there with its reason logged and recorded in the
//! JSON (`wall_gate`); the modeled critical-path gate still holds the
//! line.

use cc_bench::field::{run_field_sweep, FieldCase, FieldSweep};
use cc_bench::header;
use cc_bench::replay::{build_bst, pack_chunks, pack_full, TreeSpec};
use cc_bench::sample::{SampledReplay, SampledSpec};
use cc_core::rng::SplitMix64;
use cc_sample::{error_report, Counters, SampleConfig};
use cc_sim::batch::{BatchCursor, BatchSink, TraceBuf};
use cc_sim::event::{EventSink, TraceBuffer};
use cc_sim::shard::{ShardPlan, ShardedTrace};
use cc_sim::{MachineConfig, MemorySink, MemorySystem, ShardedReplayer};
use cc_sweep::{TraceKey, TraceStore};
use criterion::black_box;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// Shards requested for the headline sharded timings (the scaling sweep
/// varies this; every fig5 machine has at least 4 exact shards).
const SHARDS: usize = 4;

/// Wall-clock gate thresholds, recorded in every artifact so a skipped or
/// failed gate is auditable from the JSON alone: the minimum speedup the
/// threaded replay must show over the batched drain, and the core count
/// below which the gate is skipped rather than enforced.
const WALL_GATE_MIN: f64 = 2.0;
const WALL_GATE_CORES: usize = 4;

/// Sampled-simulation gates: the operating point's worst-counter
/// extrapolation error must stay within the pipeline's calibrated bound
/// in both modes, and in full mode — where the trace is long enough for
/// sampling to amortize its fingerprint pass — the operating point must
/// beat the full replay by at least this factor.
const SAMPLED_ERROR_GATE_PCT: f64 = 2.0;
const SAMPLED_SPEEDUP_GATE: f64 = 10.0;

// Field order is cc-lint's PAD-01 suggestion (wide members first, the
// u32/bool tail packed); repr(C) pins it, the offset test below holds it.
#[repr(C)]
struct CaseSpec {
    tree: TreeSpec,
    name: &'static str,
    layout: &'static str,
    searches: u64,
    /// Tree has `2^bits - 1` keys (a complete BST).
    bits: u32,
    sw_prefetch: bool,
}

struct Timing {
    name: &'static str,
    layout: &'static str,
    keys: u64,
    events: usize,
    memory_refs: usize,
    shards: usize,
    scalar_ns: f64,
    batched_ns: f64,
    batched_obs_ns: f64,
    sharded_ns: f64,
    sharded_wall_ns: f64,
    obs_overhead_pct: f64,
    obs_overhead_raw_pct: f64,
    scalar_refs_per_sec: f64,
    batched_refs_per_sec: f64,
    sharded_refs_per_sec: f64,
    speedup: f64,
    sharded_speedup_vs_scalar: f64,
    sharded_speedup_vs_batched: f64,
    sharded_wall_speedup_vs_batched: f64,
    scalar_spread_pct: f64,
    batched_spread_pct: f64,
    sharded_wall_spread_pct: f64,
}

/// Timing passes per engine: `CC_BENCH_REPEATS` when set, else the mode
/// default, never below 5 — a median over fewer samples is just noise
/// with extra steps.
fn repeats(quick: bool) -> usize {
    let default = if quick { 5 } else { 12 };
    std::env::var("CC_BENCH_REPEATS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(default)
        .max(5)
}

/// Median of a sample set (sorts in place; averages the middle pair for
/// even counts).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    assert!(n > 0, "median of an empty sample set");
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Full spread (max − min) of a sample set as a percentage of its median.
fn spread_pct(samples: &[f64], med: f64) -> f64 {
    let lo = samples.iter().copied().fold(f64::MAX, f64::min);
    let hi = samples.iter().copied().fold(f64::MIN, f64::max);
    100.0 * (hi - lo) / med
}

/// One point on the sampled error-vs-speedup curve: the cc-sample
/// pipeline at one cluster count against the shared full-replay baseline.
struct SampledPoint {
    clusters: usize,
    intervals: usize,
    representatives: usize,
    sampled_ns: f64,
    speedup_vs_batched: f64,
    max_error_pct: f64,
    worst: &'static str,
}

/// The sampled-simulation sweep: workload coordinates, the full-replay
/// baseline, and the curve over cluster counts.
struct SampledSweep {
    points: Vec<SampledPoint>,
    keys: u64,
    searches: u64,
    interval_searches: u64,
    events: u64,
    batched_ns: f64,
    probe_shift: u32,
}

impl SampledSweep {
    /// The headline operating point: the fastest curve point whose
    /// worst-counter error stays within the calibrated bound.
    fn operating_point(&self) -> Option<&SampledPoint> {
        self.points
            .iter()
            .filter(|p| p.max_error_pct <= SAMPLED_ERROR_GATE_PCT)
            .max_by(|a, b| a.speedup_vs_batched.total_cmp(&b.speedup_vs_batched))
    }
}

/// Runs the sampled-simulation sweep: one timed full replay of a
/// fig5-shaped randomized-BST search stream (the rate-1.0 ground truth),
/// then the cc-sample pipeline over the identical key stream at several
/// cluster counts, each timed end-to-end (fingerprint, clustering,
/// representative replay, extrapolation).
fn run_sampled_sweep(machine: &MachineConfig, quick: bool) -> SampledSweep {
    // The reference workload keeps the tree several times larger than L2
    // so steady-state misses dominate compulsory ones — the regime the
    // sampler's warmup windows are calibrated for. Full mode runs it at
    // production scale, ~50x beyond cc-serve's 2.4M-event full-replay
    // budget; quick keeps the same shape small enough for CI smoke.
    let (bits, searches, per, probe_shift) = if quick {
        (17u32, 160_000u64, 4096u64, 3u32)
    } else {
        (21, 6_000_000, 8192, 4)
    };
    let n = (1u64 << bits) - 1;
    let seed = 0x5A3D_51EE;
    let tree_spec = TreeSpec {
        randomize: Some(0xA11),
        depth_first: false,
        morph: false,
    };
    let tree = build_bst(machine, n, tree_spec);

    // Timed baseline: the identical key stream, generated and replayed in
    // full through the same sharded batched engine the sampler's
    // representatives use, one interval at a time (bounded memory at any
    // trace length) — exactly the rate-1.0 ground-truth path.
    eprintln!("sampled sweep: full-replay baseline ({n} keys, {searches} searches)…");
    let start = Instant::now();
    let mut r = ShardedReplayer::new(*machine, SHARDS);
    let mut rng = SplitMix64::new(seed);
    let mut done = 0u64;
    while done < searches {
        let count = per.min(searches - done);
        let mut buf = TraceBuffer::new();
        for _ in 0..count {
            let key = 2 * rng.below(n);
            tree.search(key, &mut buf, false);
        }
        let bufs = pack_full(&buf);
        let split = r.split(&bufs);
        r.replay(&split);
        done += count;
    }
    let batched_secs = start.elapsed().as_secs_f64();
    let full = Counters::from_replayer(&r);

    let mut points = Vec::new();
    for clusters in [2usize, 4, 8, 16] {
        let spec = SampledSpec {
            interval_searches: per,
            sample: SampleConfig {
                max_clusters: clusters,
                ..SampleConfig::default()
            },
            probe_shift,
            ..SampledSpec::default()
        };
        let start = Instant::now();
        let mut sr = SampledReplay::new(
            *machine,
            n,
            seed,
            SHARDS,
            None,
            TraceKey::new("engine-sampled"),
            spec,
        );
        let result = sr
            .run(searches, |key, buf| {
                tree.search(key, buf, false);
            })
            .expect("no cancel hook installed");
        let sampled_secs = start.elapsed().as_secs_f64();
        let err = error_report(&result.stats.counters, &full);
        eprintln!(
            "  k={clusters}: {:.1} ms, {:.2}x, max err {:.3}% ({})",
            sampled_secs * 1e3,
            batched_secs / sampled_secs,
            err.max_error_pct,
            err.worst
        );
        points.push(SampledPoint {
            clusters,
            intervals: result.intervals,
            representatives: result.representatives,
            sampled_ns: sampled_secs * 1e9,
            speedup_vs_batched: batched_secs / sampled_secs,
            max_error_pct: err.max_error_pct,
            worst: err.worst,
        });
    }
    SampledSweep {
        keys: n,
        searches,
        interval_searches: per,
        probe_shift,
        events: full.events,
        batched_ns: batched_secs * 1e9,
        points,
    }
}

/// The content-addressed coordinates of one engine trace: layout recipe,
/// machine geometry, tree size, search count, prefetch flag, RNG seed.
fn trace_key(machine: &MachineConfig, spec: &CaseSpec) -> TraceKey {
    spec.tree
        .fold_key(TraceKey::new("engine"))
        .machine(machine)
        .fold((1u64 << spec.bits) - 1)
        .fold(spec.searches)
        .fold(u64::from(spec.sw_prefetch))
        .fold(0x51EE7)
}

/// Fetches (or records) the packed trace for `spec`. The recording block
/// matches fig5's measurement loop — same layouts, same RNG — so this is
/// literally the figure's event stream.
fn recorded_bufs(
    machine: &MachineConfig,
    spec: &CaseSpec,
    store: &TraceStore,
) -> Arc<Vec<TraceBuf>> {
    let n = (1u64 << spec.bits) - 1;
    store.get_or_generate(trace_key(machine, spec), || {
        let t = build_bst(machine, n, spec.tree);
        let mut buf = TraceBuffer::new();
        let mut rng = SplitMix64::new(0x51EE7);
        for _ in 0..spec.searches {
            let key = 2 * rng.below(n);
            t.search(key, &mut buf, spec.sw_prefetch);
        }
        pack_full(&buf)
    })
}

/// Replays the trace through the scalar reference sink; returns cycles as
/// the live output for `black_box`.
fn run_scalar(machine: &MachineConfig, trace: &TraceBuffer) -> u64 {
    let mut sink = MemorySink::new(*machine);
    trace.replay(&mut sink);
    sink.memory_cycles()
}

/// Drains prepacked chunks through the batched fast path.
fn run_batched(machine: &MachineConfig, chunks: &[TraceBuf]) -> u64 {
    let mut sys = MemorySystem::new(*machine);
    let mut cursor = BatchCursor::new();
    let mut now = 0u64;
    let mut cycles = 0u64;
    for c in chunks {
        let out = sys.access_batch(c, now, &mut cursor);
        now += out.events;
        cycles += out.cycles;
    }
    cycles
}

/// Drains prepacked chunks through the batched fast path with the
/// process-wide observability surface engaged, at the granularity the
/// figure binaries use it: one span around the replay, counters bumped
/// once per replay. The gap between this and [`run_batched`] is the
/// whole cost of having cc-obs wired in, and CI gates it at 5%.
fn run_batched_obs(machine: &MachineConfig, chunks: &[TraceBuf]) -> u64 {
    cc_bench::obs::span("batched replay", "engine", 0, || {
        let cycles = run_batched(machine, chunks);
        cc_bench::obs::bump("engine.batched_obs.replays", 1);
        cc_bench::obs::bump("engine.batched_obs.chunks", chunks.len() as u64);
        cycles
    })
}

/// One sharded replay of a prepared split on a fresh replayer, lanes run
/// serially; returns `(critical path nanos, cycles)`.
fn run_sharded_serial(machine: &MachineConfig, shards: usize, split: &ShardedTrace) -> (u64, u64) {
    let mut r = ShardedReplayer::new(*machine, shards);
    let out = r.replay_serial(split);
    (out.critical_path_nanos(), out.cycles)
}

/// One threaded sharded replay on a fresh replayer; returns cycles.
fn run_sharded_threaded(machine: &MachineConfig, shards: usize, split: &ShardedTrace) -> u64 {
    let mut r = ShardedReplayer::new(*machine, shards);
    r.replay(split).cycles
}

/// The engines must agree bit-for-bit before their speeds are compared:
/// the scalar sink, the public [`BatchSink`] (which packs and drains
/// incrementally), the prepacked chunk drain, and the sharded replayer
/// must all produce identical statistics and cycle totals.
fn assert_engines_agree(
    machine: &MachineConfig,
    name: &str,
    trace: &TraceBuffer,
    chunks: &[TraceBuf],
    split: &ShardedTrace,
) {
    let mut scalar = MemorySink::new(*machine);
    trace.replay(&mut scalar);
    let mut batched = BatchSink::new(*machine);
    trace.replay(&mut batched);
    batched.flush();
    assert_eq!(
        batched.system().l1_stats(),
        scalar.system().l1_stats(),
        "{name}: L1 stats diverged between engines"
    );
    assert_eq!(
        batched.system().l2_stats(),
        scalar.system().l2_stats(),
        "{name}: L2 stats diverged between engines"
    );
    assert_eq!(
        batched.system().tlb_stats(),
        scalar.system().tlb_stats(),
        "{name}: TLB stats diverged between engines"
    );
    assert_eq!(
        batched.memory_cycles(),
        scalar.memory_cycles(),
        "{name}: cycle totals diverged between engines"
    );

    // The prepacked drain is what the timer runs; hold it to the same bar.
    let mut sys = MemorySystem::new(*machine);
    let mut cursor = BatchCursor::new();
    let mut now = 0u64;
    let mut cycles = 0u64;
    for c in chunks {
        let out = sys.access_batch(c, now, &mut cursor);
        now += out.events;
        cycles += out.cycles;
    }
    assert_eq!(
        cycles,
        scalar.memory_cycles(),
        "{name}: prepacked drain cycles diverged from scalar"
    );
    assert_eq!(
        sys.l1_stats(),
        scalar.system().l1_stats(),
        "{name}: prepacked drain L1 stats diverged from scalar"
    );
    assert_eq!(
        sys.l2_stats(),
        scalar.system().l2_stats(),
        "{name}: prepacked drain L2 stats diverged from scalar"
    );
    assert_eq!(
        sys.tlb_stats(),
        scalar.system().tlb_stats(),
        "{name}: prepacked drain TLB stats diverged from scalar"
    );

    // The sharded replayer, both threaded and serial, against the same bar.
    for serial in [false, true] {
        let mut sharded = ShardedReplayer::new(*machine, SHARDS);
        let out = if serial {
            sharded.replay_serial(split)
        } else {
            sharded.replay(split)
        };
        let tag = if serial { "serial" } else { "threaded" };
        assert_eq!(
            sharded.l1_stats(),
            scalar.system().l1_stats(),
            "{name}: sharded ({tag}) L1 stats diverged from scalar"
        );
        assert_eq!(
            sharded.l2_stats(),
            scalar.system().l2_stats(),
            "{name}: sharded ({tag}) L2 stats diverged from scalar"
        );
        assert_eq!(
            sharded.tlb_stats(),
            scalar.system().tlb_stats(),
            "{name}: sharded ({tag}) TLB stats diverged from scalar"
        );
        assert_eq!(
            out.cycles,
            scalar.memory_cycles(),
            "{name}: sharded ({tag}) cycles diverged from scalar"
        );
        assert_eq!(
            sharded.insts(),
            scalar.insts(),
            "{name}: sharded ({tag}) instruction totals diverged from scalar"
        );
        assert_eq!(
            sharded.degradation(),
            cc_sim::ShardDegradation::default(),
            "{name}: sharded ({tag}) replay degraded on a clean trace"
        );
    }
}

fn json_escape_free(s: &str) -> &str {
    // Names are static identifiers; assert rather than escape.
    assert!(s
        .chars()
        .all(|c| c.is_ascii_graphic() && c != '"' && c != '\\'));
    s
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    mode: &str,
    cores: usize,
    parallelism: Option<usize>,
    reps: usize,
    wall_gate: &str,
    timings: &[Timing],
    scaling: &[(usize, f64)],
    sampled: &SampledSweep,
    field: &FieldSweep,
    store: &TraceStore,
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"cc-bench-engine\",")?;
    writeln!(f, "  \"mode\": \"{mode}\",")?;
    writeln!(f, "  \"machine\": \"ultrasparc_e5000\",")?;
    writeln!(f, "  \"cores\": {cores},")?;
    // Host block: why the wall gate ran, skipped, or failed is auditable
    // from the artifact alone — the raw detection result (null when the
    // host would not say, in which case `cores` falls back to 1) next to
    // the thresholds the gate applied.
    writeln!(f, "  \"host\": {{")?;
    match parallelism {
        Some(n) => writeln!(f, "    \"available_parallelism\": {n},")?,
        None => writeln!(f, "    \"available_parallelism\": null,")?,
    }
    writeln!(f, "    \"wall_gate_needs_cores\": {WALL_GATE_CORES},")?;
    writeln!(f, "    \"wall_gate_min_speedup\": {WALL_GATE_MIN:.1},")?;
    writeln!(f, "    \"wall_gate_shards\": {SHARDS}")?;
    writeln!(f, "  }},")?;
    writeln!(f, "  \"repeats\": {reps},")?;
    writeln!(f, "  \"timing_stat\": \"median over repeats\",")?;
    writeln!(f, "  \"wall_gate\": \"{wall_gate}\",")?;
    writeln!(
        f,
        "  \"sharded_metric\": \"critical path over serially-run lanes (modeled one core per shard)\","
    )?;
    writeln!(f, "  \"traces\": [")?;
    for (i, t) in timings.iter().enumerate() {
        writeln!(f, "    {{")?;
        writeln!(f, "      \"name\": \"{}\",", json_escape_free(t.name))?;
        writeln!(f, "      \"layout\": \"{}\",", json_escape_free(t.layout))?;
        writeln!(f, "      \"keys\": {},", t.keys)?;
        writeln!(f, "      \"events\": {},", t.events)?;
        writeln!(f, "      \"memory_refs\": {},", t.memory_refs)?;
        writeln!(f, "      \"shards\": {},", t.shards)?;
        writeln!(f, "      \"scalar_ns_per_replay\": {:.0},", t.scalar_ns)?;
        writeln!(f, "      \"batched_ns_per_replay\": {:.0},", t.batched_ns)?;
        writeln!(
            f,
            "      \"batched_obs_ns_per_replay\": {:.0},",
            t.batched_obs_ns
        )?;
        writeln!(f, "      \"obs_overhead_pct\": {:.2},", t.obs_overhead_pct)?;
        writeln!(
            f,
            "      \"obs_overhead_raw_pct\": {:.2},",
            t.obs_overhead_raw_pct
        )?;
        writeln!(f, "      \"sharded_ns_per_replay\": {:.0},", t.sharded_ns)?;
        writeln!(
            f,
            "      \"sharded_wall_ns_per_replay\": {:.0},",
            t.sharded_wall_ns
        )?;
        writeln!(
            f,
            "      \"scalar_refs_per_sec\": {:.0},",
            t.scalar_refs_per_sec
        )?;
        writeln!(
            f,
            "      \"batched_refs_per_sec\": {:.0},",
            t.batched_refs_per_sec
        )?;
        writeln!(
            f,
            "      \"sharded_refs_per_sec\": {:.0},",
            t.sharded_refs_per_sec
        )?;
        writeln!(f, "      \"speedup\": {:.2},", t.speedup)?;
        writeln!(
            f,
            "      \"sharded_speedup_vs_scalar\": {:.2},",
            t.sharded_speedup_vs_scalar
        )?;
        writeln!(
            f,
            "      \"sharded_speedup_vs_batched\": {:.2},",
            t.sharded_speedup_vs_batched
        )?;
        writeln!(
            f,
            "      \"sharded_wall_speedup_vs_batched\": {:.2},",
            t.sharded_wall_speedup_vs_batched
        )?;
        writeln!(
            f,
            "      \"scalar_spread_pct\": {:.2},",
            t.scalar_spread_pct
        )?;
        writeln!(
            f,
            "      \"batched_spread_pct\": {:.2},",
            t.batched_spread_pct
        )?;
        writeln!(
            f,
            "      \"sharded_wall_spread_pct\": {:.2}",
            t.sharded_wall_spread_pct
        )?;
        writeln!(f, "    }}{}", if i + 1 < timings.len() { "," } else { "" })?;
    }
    writeln!(f, "  ],")?;
    writeln!(f, "  \"shard_scaling\": {{")?;
    writeln!(f, "    \"trace\": \"fig5-ctree-full\",")?;
    writeln!(f, "    \"points\": [")?;
    for (i, (shards, ns)) in scaling.iter().enumerate() {
        writeln!(
            f,
            "      {{ \"shards\": {shards}, \"ns_per_replay\": {ns:.0} }}{}",
            if i + 1 < scaling.len() { "," } else { "" }
        )?;
    }
    writeln!(f, "    ]")?;
    writeln!(f, "  }},")?;
    writeln!(f, "  \"sampled_sim\": {{")?;
    writeln!(f, "    \"workload\": \"fig5-random-bst\",")?;
    writeln!(f, "    \"keys\": {},", sampled.keys)?;
    writeln!(f, "    \"searches\": {},", sampled.searches)?;
    writeln!(f, "    \"events\": {},", sampled.events)?;
    writeln!(
        f,
        "    \"interval_searches\": {},",
        sampled.interval_searches
    )?;
    writeln!(f, "    \"probe_shift\": {},", sampled.probe_shift)?;
    writeln!(f, "    \"batched_ms\": {:.3},", sampled.batched_ns * 1e-6)?;
    writeln!(f, "    \"error_gate_pct\": {SAMPLED_ERROR_GATE_PCT:.1},")?;
    writeln!(f, "    \"points\": [")?;
    for (i, p) in sampled.points.iter().enumerate() {
        writeln!(f, "      {{")?;
        writeln!(f, "        \"clusters\": {},", p.clusters)?;
        writeln!(f, "        \"intervals\": {},", p.intervals)?;
        writeln!(f, "        \"representatives\": {},", p.representatives)?;
        writeln!(f, "        \"sampled_ms\": {:.3},", p.sampled_ns * 1e-6)?;
        writeln!(
            f,
            "        \"speedup_vs_batched\": {:.2},",
            p.speedup_vs_batched
        )?;
        writeln!(f, "        \"max_error_pct\": {:.3},", p.max_error_pct)?;
        writeln!(
            f,
            "        \"worst_counter\": \"{}\"",
            json_escape_free(p.worst)
        )?;
        writeln!(
            f,
            "      }}{}",
            if i + 1 < sampled.points.len() {
                ","
            } else {
                ""
            }
        )?;
    }
    writeln!(f, "    ],")?;
    match sampled.operating_point() {
        Some(p) => writeln!(f, "    \"operating_point_clusters\": {}", p.clusters)?,
        None => writeln!(f, "    \"operating_point_clusters\": null")?,
    }
    writeln!(f, "  }},")?;
    writeln!(f, "  \"field_layout\": {{")?;
    writeln!(f, "    \"workload\": \"fat-bst search + key scan\",")?;
    writeln!(f, "    \"keys\": {},", field.n)?;
    writeln!(f, "    \"searches\": {},", field.searches)?;
    writeln!(f, "    \"scans\": {},", field.scans)?;
    writeln!(f, "    \"cases\": [")?;
    for (i, r) in field.results.iter().enumerate() {
        writeln!(f, "      {{")?;
        writeln!(f, "        \"case\": \"{}\",", r.case.name())?;
        writeln!(f, "        \"search_us\": {:.4},", r.search_us)?;
        writeln!(f, "        \"scan_us\": {:.5},", r.scan_us)?;
        writeln!(
            f,
            "        \"search_l1_miss_pct\": {:.2},",
            r.search_l1_miss_pct
        )?;
        writeln!(f, "        \"hot_stride\": {},", r.hot_stride)?;
        writeln!(
            f,
            "        \"search_speedup_vs_aos\": {:.2},",
            field.search_speedup(r.case)
        )?;
        writeln!(
            f,
            "        \"scan_speedup_vs_aos\": {:.2},",
            field.scan_speedup(r.case)
        )?;
        writeln!(f, "        \"search_l1_miss_shares\": [")?;
        for (j, (name, share)) in r.field_misses.iter().enumerate() {
            writeln!(
                f,
                "          {{ \"field\": \"{}\", \"share\": {share:.4} }}{}",
                json_escape_free(name),
                if j + 1 < r.field_misses.len() {
                    ","
                } else {
                    ""
                }
            )?;
        }
        writeln!(f, "        ]")?;
        writeln!(
            f,
            "      }}{}",
            if i + 1 < field.results.len() { "," } else { "" }
        )?;
    }
    writeln!(f, "    ]")?;
    writeln!(f, "  }},")?;
    let c = store.counters();
    writeln!(f, "  \"trace_store\": {{")?;
    writeln!(f, "    \"hits\": {},", c.hits)?;
    writeln!(f, "    \"misses\": {},", c.misses)?;
    writeln!(f, "    \"disk_hits\": {},", c.disk_hits)?;
    writeln!(f, "    \"generations\": {}", c.generations)?;
    writeln!(f, "  }},")?;
    let headline = timings
        .iter()
        .find(|t| t.name == "fig5-pointer-chase")
        .map(|t| t.speedup)
        .unwrap_or(f64::NAN);
    writeln!(f, "  \"pointer_chase_speedup\": {headline:.2},")?;
    let sharded_headline = timings
        .iter()
        .find(|t| t.name == "fig5-ctree-full")
        .map(|t| t.sharded_speedup_vs_batched)
        .unwrap_or(f64::NAN);
    writeln!(
        f,
        "  \"sharded_speedup_vs_batched\": {sharded_headline:.2},"
    )?;
    let wall_headline = timings
        .iter()
        .find(|t| t.name == "fig5-ctree-full")
        .map(|t| t.sharded_wall_speedup_vs_batched)
        .unwrap_or(f64::NAN);
    writeln!(
        f,
        "  \"sharded_wall_speedup_vs_batched\": {wall_headline:.2},"
    )?;
    writeln!(
        f,
        "  \"field_layout_speedup_vs_aos\": {:.2},",
        field.headline_speedup()
    )?;
    match sampled.operating_point() {
        Some(p) => writeln!(
            f,
            "  \"sampled_speedup_vs_batched\": {:.2}",
            p.speedup_vs_batched
        )?,
        None => writeln!(f, "  \"sampled_speedup_vs_batched\": null")?,
    }
    writeln!(f, "}}")?;
    Ok(())
}

/// The wall-vs-modeled companion table: one row per trace putting the
/// threaded replay's actual wall time next to the modeled critical path
/// and the batched baseline, so a CI artifact shows at a glance where
/// wall-clock stands relative to the model on the host that ran it.
fn write_wall_table(
    path: &str,
    cores: usize,
    reps: usize,
    wall_gate: &str,
    timings: &[Timing],
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "sharded replay, wall-clock vs modeled ({SHARDS} shards, {cores} host cores, \
         median of {reps} repeats)"
    )?;
    writeln!(
        f,
        "wall gate (fig5-ctree-full >= 2.0x vs batched): {wall_gate}"
    )?;
    writeln!(f)?;
    writeln!(
        f,
        "{:<24}{:>13}{:>13}{:>13}{:>9}{:>9}{:>9}",
        "trace", "batched ms", "modeled ms", "wall ms", "mod/b", "wall/b", "spread%"
    )?;
    for t in timings {
        writeln!(
            f,
            "{:<24}{:>13.3}{:>13.3}{:>13.3}{:>8.2}x{:>8.2}x{:>8.1}%",
            t.name,
            t.batched_ns * 1e-6,
            t.sharded_ns * 1e-6,
            t.sharded_wall_ns * 1e-6,
            t.sharded_speedup_vs_batched,
            t.sharded_wall_speedup_vs_batched,
            t.sharded_wall_spread_pct
        )?;
    }
    Ok(())
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_sim.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: cc-bench-engine [--quick] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let machine = MachineConfig::ultrasparc_e5000();
    // The fig5 layout recipes, as shared with the figure binary itself.
    let ctree = TreeSpec {
        randomize: None,
        depth_first: false,
        morph: true,
    };
    let dfs = TreeSpec {
        randomize: None,
        depth_first: true,
        morph: false,
    };
    let random = TreeSpec {
        randomize: Some(0xA11),
        depth_first: false,
        morph: false,
    };
    let allocation = TreeSpec {
        randomize: None,
        depth_first: false,
        morph: false,
    };
    // Cells follow fig5's checkpoints: the ~1000-node tree at the figure's
    // left edge (the headline pointer chase, over the paper's own C-tree
    // layout) up to the 2^21-node tree at its right edge, plus the other
    // layouts and a software-prefetch trace so the batched engine's
    // in-flight-aware slow path is timed and gated too.
    let cases: Vec<CaseSpec> = if quick {
        vec![
            CaseSpec {
                name: "fig5-pointer-chase",
                layout: "ctree",
                tree: ctree,
                bits: 10,
                searches: 4_000,
                sw_prefetch: false,
            },
            CaseSpec {
                name: "fig5-ctree-full",
                layout: "ctree",
                tree: ctree,
                bits: 13,
                searches: 4_000,
                sw_prefetch: false,
            },
            CaseSpec {
                name: "fig5-dfs",
                layout: "depth-first",
                tree: dfs,
                bits: 13,
                searches: 4_000,
                sw_prefetch: false,
            },
            CaseSpec {
                name: "fig5-random-clustered",
                layout: "random",
                tree: random,
                bits: 11,
                searches: 4_000,
                sw_prefetch: false,
            },
            CaseSpec {
                name: "fig5-prefetch",
                layout: "allocation",
                tree: allocation,
                bits: 11,
                searches: 1_000,
                sw_prefetch: true,
            },
        ]
    } else {
        vec![
            CaseSpec {
                name: "fig5-pointer-chase",
                layout: "ctree",
                tree: ctree,
                bits: 10,
                searches: 40_000,
                sw_prefetch: false,
            },
            CaseSpec {
                name: "fig5-ctree-full",
                layout: "ctree",
                tree: ctree,
                bits: 21,
                searches: 40_000,
                sw_prefetch: false,
            },
            CaseSpec {
                name: "fig5-dfs",
                layout: "depth-first",
                tree: dfs,
                bits: 21,
                searches: 40_000,
                sw_prefetch: false,
            },
            CaseSpec {
                name: "fig5-random-clustered",
                layout: "random",
                tree: random,
                bits: 14,
                searches: 40_000,
                sw_prefetch: false,
            },
            CaseSpec {
                name: "fig5-prefetch",
                layout: "allocation",
                tree: allocation,
                bits: 14,
                searches: 10_000,
                sw_prefetch: true,
            },
        ]
    };

    let reps = repeats(quick);
    let parallelism = std::thread::available_parallelism().ok().map(|n| n.get());
    let cores = parallelism.unwrap_or(1);
    header(
        "Engine benchmark: scalar vs batched vs sharded trace replay",
        &format!(
            "fig5 search traces; prepacked batch drain and {SHARDS}-shard split \
             ({} mode, median of {reps} repeats, {cores} host cores)",
            if quick { "quick" } else { "full" },
        ),
    );

    let store = TraceStore::from_env();
    if store.has_disk() {
        eprintln!("trace store: CC_TRACE_CACHE disk tier enabled");
    }

    let mut timings = Vec::new();
    for spec in &cases {
        let keys = (1u64 << spec.bits) - 1;
        eprintln!(
            "preparing {} ({} layout, {keys} keys, {} searches)…",
            spec.name, spec.layout, spec.searches
        );
        let bufs = recorded_bufs(&machine, spec, &store);
        // Rebuild the flat event stream for the scalar engine and the
        // tick-folded chunks for the batched drain — both once, outside
        // the timed region, exactly like packing.
        let mut trace = TraceBuffer::new();
        for buf in bufs.iter() {
            for ev in buf.events() {
                trace.event(ev);
            }
        }
        let chunks = pack_chunks(&trace);
        let plan = ShardPlan::new(&machine, SHARDS);
        let split = ShardedTrace::split_pooled(&machine, &plan, &bufs, store.split_pool());
        assert_engines_agree(&machine, spec.name, &trace, &chunks, &split);

        // Round-robin the engines `reps` times and keep every sample, so
        // any slow drift in host load is shared instead of biasing one
        // side, and the reported number is a median with a spread rather
        // than a single lucky minimum.
        let mut scalar_s = Vec::with_capacity(reps);
        let mut batched_s = Vec::with_capacity(reps);
        let mut batched_obs_s = Vec::with_capacity(reps);
        let mut sharded_s = Vec::with_capacity(reps);
        let mut sharded_wall_s = Vec::with_capacity(reps);
        for _ in 0..reps {
            let start = Instant::now();
            black_box(run_scalar(black_box(&machine), black_box(&trace)));
            scalar_s.push(start.elapsed().as_secs_f64());
            let start = Instant::now();
            black_box(run_batched(black_box(&machine), black_box(&chunks)));
            batched_s.push(start.elapsed().as_secs_f64());
            let start = Instant::now();
            black_box(run_batched_obs(black_box(&machine), black_box(&chunks)));
            batched_obs_s.push(start.elapsed().as_secs_f64());
            let (critical, cycles) =
                run_sharded_serial(black_box(&machine), SHARDS, black_box(&split));
            black_box(cycles);
            sharded_s.push(critical as f64 * 1e-9);
            let start = Instant::now();
            black_box(run_sharded_threaded(
                black_box(&machine),
                SHARDS,
                black_box(&split),
            ));
            sharded_wall_s.push(start.elapsed().as_secs_f64());
        }
        store.split_pool().recycle(split);

        // Pair each repeat's obs-enabled pass with the plain pass of the
        // same lap before any sorting: cross-lap host drift cancels
        // within a pair, so the paired deltas measure the hooks and
        // nothing else.
        let mut overhead_s: Vec<f64> = batched_obs_s
            .iter()
            .zip(&batched_s)
            .map(|(obs, plain)| 100.0 * (obs - plain) / plain)
            .collect();
        let obs_overhead_raw_pct = median(&mut overhead_s);

        let scalar_med = median(&mut scalar_s);
        let batched_med = median(&mut batched_s);
        let batched_obs_med = median(&mut batched_obs_s);
        let sharded_med = median(&mut sharded_s);
        let sharded_wall_med = median(&mut sharded_wall_s);

        let memory_refs = trace.memory_refs();
        let scalar_ns = scalar_med * 1e9;
        let batched_ns = batched_med * 1e9;
        let batched_obs_ns = batched_obs_med * 1e9;
        let sharded_ns = sharded_med * 1e9;
        let sharded_wall_ns = sharded_wall_med * 1e9;
        timings.push(Timing {
            name: spec.name,
            layout: spec.layout,
            keys,
            events: trace.events().len(),
            memory_refs,
            shards: plan.shards(),
            scalar_ns,
            batched_ns,
            batched_obs_ns,
            sharded_ns,
            sharded_wall_ns,
            obs_overhead_pct: obs_overhead_raw_pct.max(0.0),
            obs_overhead_raw_pct,
            scalar_refs_per_sec: memory_refs as f64 / scalar_med,
            batched_refs_per_sec: memory_refs as f64 / batched_med,
            sharded_refs_per_sec: memory_refs as f64 / sharded_med,
            speedup: scalar_ns / batched_ns,
            sharded_speedup_vs_scalar: scalar_ns / sharded_ns,
            sharded_speedup_vs_batched: batched_ns / sharded_ns,
            sharded_wall_speedup_vs_batched: batched_ns / sharded_wall_ns,
            scalar_spread_pct: spread_pct(&scalar_s, scalar_med),
            batched_spread_pct: spread_pct(&batched_s, batched_med),
            sharded_wall_spread_pct: spread_pct(&sharded_wall_s, sharded_wall_med),
        });
    }

    // Shard-count scaling on the headline trace. The trace comes back out
    // of the store (a warm hit — recording already happened above), and
    // every shard count shares that one cached trace.
    let scaling_spec = cases
        .iter()
        .find(|c| c.name == "fig5-ctree-full")
        .expect("scaling trace present in both modes");
    let bufs = recorded_bufs(&machine, scaling_spec, &store);
    let mut scaling = Vec::new();
    eprintln!("shard scaling on fig5-ctree-full…");
    for shards in [1usize, 2, 4, 8] {
        let plan = ShardPlan::new(&machine, shards);
        let split = ShardedTrace::split_pooled(&machine, &plan, &bufs, store.split_pool());
        let mut crit_s = Vec::with_capacity(reps.min(6));
        for _ in 0..reps.min(6) {
            let (critical, cycles) = run_sharded_serial(&machine, shards, &split);
            black_box(cycles);
            crit_s.push(critical as f64);
        }
        scaling.push((plan.shards(), median(&mut crit_s)));
        store.split_pool().recycle(split);
    }

    // The sampled-simulation sweep: the representative-interval pipeline
    // against a timed full replay of the same search stream.
    let sampled = run_sampled_sweep(&machine, quick);

    // The field-layout sweep: AoS vs the three cc-core field transforms
    // on the fat-node tree, in deterministic simulated time.
    eprintln!("field-layout sweep on the fat-node tree…");
    let field = run_field_sweep(&machine, quick);

    println!(
        "\n{:<24}{:>12}{:>11}{:>15}{:>15}{:>15}{:>9}{:>9}{:>9}{:>8}",
        "trace",
        "layout",
        "mem refs",
        "scalar refs/s",
        "batch refs/s",
        "shard refs/s",
        "b/s",
        "sh/b",
        "wall/b",
        "obs%"
    );
    for t in &timings {
        println!(
            "{:<24}{:>12}{:>11}{:>15.0}{:>15.0}{:>15.0}{:>8.2}x{:>8.2}x{:>8.2}x{:>7.2}%",
            t.name,
            t.layout,
            t.memory_refs,
            t.scalar_refs_per_sec,
            t.batched_refs_per_sec,
            t.sharded_refs_per_sec,
            t.speedup,
            t.sharded_speedup_vs_batched,
            t.sharded_wall_speedup_vs_batched,
            t.obs_overhead_pct
        );
    }
    println!(
        "timing spread over {reps} repeats (max-min as % of median, sharded wall lane): {}",
        timings
            .iter()
            .map(|t| format!("{} {:.1}%", t.name, t.sharded_wall_spread_pct))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("\nshard scaling (fig5-ctree-full, critical-path ns/replay):");
    for (shards, ns) in &scaling {
        println!("  {shards:>2} shards  {ns:>14.0}");
    }
    println!(
        "\nsampled simulation (fig5-random-bst, {} keys, {} searches, {} events):",
        sampled.keys, sampled.searches, sampled.events
    );
    println!(
        "  full replay baseline: {:.1} ms",
        sampled.batched_ns * 1e-6
    );
    for p in &sampled.points {
        println!(
            "  k={:<3} reps={:<3} {:>10.1} ms  {:>6.2}x vs full  max err {:.3}% ({})",
            p.clusters,
            p.representatives,
            p.sampled_ns * 1e-6,
            p.speedup_vs_batched,
            p.max_error_pct,
            p.worst
        );
    }
    match sampled.operating_point() {
        Some(p) => println!(
            "  operating point: k={} at {:.2}x, max err {:.3}% (gate {:.1}%)",
            p.clusters, p.speedup_vs_batched, p.max_error_pct, SAMPLED_ERROR_GATE_PCT
        ),
        None => {
            println!("  operating point: NONE within the {SAMPLED_ERROR_GATE_PCT:.1}% error gate")
        }
    }
    println!(
        "\nfield-layout sweep (fat-bst, {} keys, simulated time; {} searches, {} scans):",
        field.n, field.searches, field.scans
    );
    println!(
        "  {:<10}{:>12}{:>12}{:>10}{:>10}{:>9}  {}",
        "case",
        "search µs",
        "scan µs",
        "search x",
        "scan x",
        "L1 miss%",
        "hottest fields (L1 share)"
    );
    for r in &field.results {
        let hot: Vec<String> = r
            .field_misses
            .iter()
            .take(3)
            .map(|(name, share)| format!("{name} {:.0}%", 100.0 * share))
            .collect();
        println!(
            "  {:<10}{:>12.3}{:>12.4}{:>9.2}x{:>9.2}x{:>9.2}  {}",
            r.case.name(),
            r.search_us,
            r.scan_us,
            field.search_speedup(r.case),
            field.scan_speedup(r.case),
            r.search_l1_miss_pct,
            hot.join(", ")
        );
    }
    let c = store.counters();
    println!(
        "trace store: {} generations, {} memory hits, {} disk hits",
        c.generations, c.hits, c.disk_hits
    );

    // Wall-clock gate verdict, computed up front so both artifacts record
    // it. The threaded replay can only beat batched when the host can run
    // the shard lanes concurrently; on narrower hosts the gate is a
    // logged skip, not a silent pass.
    let wall_headline = timings
        .iter()
        .find(|t| t.name == "fig5-ctree-full")
        .map(|t| t.sharded_wall_speedup_vs_batched)
        .unwrap_or(f64::NAN);
    let wall_gate = if cores < WALL_GATE_CORES {
        format!(
            "skipped: host has {cores} core(s), needs {WALL_GATE_CORES}+ to run \
             {SHARDS} shard lanes in parallel (measured {wall_headline:.2}x)"
        )
    } else if wall_headline >= WALL_GATE_MIN {
        format!("passed: {wall_headline:.2}x >= {WALL_GATE_MIN:.1}x")
    } else {
        format!("failed: {wall_headline:.2}x < {WALL_GATE_MIN:.1}x")
    };

    let mode = if quick { "quick" } else { "full" };
    if let Err(e) = write_json(
        &out_path,
        mode,
        cores,
        parallelism,
        reps,
        &wall_gate,
        &timings,
        &scaling,
        &sampled,
        &field,
        &store,
    ) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    let wall_path = format!(
        "{}.wall.txt",
        out_path.strip_suffix(".json").unwrap_or(&out_path)
    );
    if let Err(e) = write_wall_table(&wall_path, cores, reps, &wall_gate, &timings) {
        eprintln!("failed to write {wall_path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out_path} and {wall_path}");

    // Fold the trace-store counters into the unified metrics snapshot and
    // flush CC_OBS_OUT before the gates can exit nonzero — a regression
    // report with no observability artifact would be the worst of both.
    let mut reg = cc_obs::MetricsRegistry::new();
    cc_sweep::obs::export_store(&mut reg, "engine.trace_store", &store.counters());
    cc_bench::obs::absorb(&reg);
    cc_bench::obs::write_obs_out();

    let mut failed = false;
    for t in &timings {
        if t.obs_overhead_pct > 5.0 {
            eprintln!(
                "REGRESSION: {} obs-enabled batched replay is {:.2}% slower than plain \
                 (gate: 5%); the observability hooks are no longer ~free",
                t.name, t.obs_overhead_pct
            );
            failed = true;
        }
        if t.batched_refs_per_sec < t.scalar_refs_per_sec {
            eprintln!(
                "REGRESSION: {} batched ({:.0} refs/s) is slower than scalar ({:.0} refs/s)",
                t.name, t.batched_refs_per_sec, t.scalar_refs_per_sec
            );
            failed = true;
        }
        if t.sharded_refs_per_sec < t.scalar_refs_per_sec {
            eprintln!(
                "REGRESSION: {} sharded critical path ({:.0} refs/s) is slower than scalar ({:.0} refs/s)",
                t.name, t.sharded_refs_per_sec, t.scalar_refs_per_sec
            );
            failed = true;
        }
    }
    match sampled.operating_point() {
        None => {
            for p in &sampled.points {
                eprintln!(
                    "  sampled k={}: {:.2}x, max err {:.3}% ({})",
                    p.clusters, p.speedup_vs_batched, p.max_error_pct, p.worst
                );
            }
            eprintln!(
                "REGRESSION: no sampled operating point stayed within the \
                 {SAMPLED_ERROR_GATE_PCT:.1}% extrapolation-error gate"
            );
            failed = true;
        }
        Some(p) if !quick && p.speedup_vs_batched < SAMPLED_SPEEDUP_GATE => {
            eprintln!(
                "REGRESSION: sampled operating point (k={}) is only {:.2}x the full \
                 replay (gate: {SAMPLED_SPEEDUP_GATE:.1}x at {} events)",
                p.clusters, p.speedup_vs_batched, sampled.events
            );
            failed = true;
        }
        Some(_) => {}
    }
    if field.headline_speedup() <= 1.0 {
        eprintln!(
            "REGRESSION: SoA scan is {:.2}x the AoS baseline (gate: > 1.0x) — the \
             field-layout headline no longer wins on its prescribed workload",
            field.headline_speedup()
        );
        failed = true;
    }
    if field.search_speedup(FieldCase::HotCold) <= 1.0 {
        eprintln!(
            "REGRESSION: hot/cold split search is {:.2}x the AoS baseline (gate: > 1.0x)",
            field.search_speedup(FieldCase::HotCold)
        );
        failed = true;
    }
    if cores < WALL_GATE_CORES {
        eprintln!("wall-clock gate {wall_gate}");
    } else if wall_headline < WALL_GATE_MIN {
        eprintln!(
            "REGRESSION: fig5-ctree-full threaded sharded replay is only {wall_headline:.2}x \
             the batched drain wall-clock (gate: {WALL_GATE_MIN:.1}x at {SHARDS} shards on a \
             {cores}-core host)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod layout_tests {
    use super::*;

    // Compiler-backed pin of the PAD-01 reorder: the wide members lead
    // and the packed tail leaves only the 3 trailing bytes rustc must
    // keep for the struct's 8-byte alignment.
    #[test]
    fn case_spec_offsets_are_pinned() {
        assert_eq!(core::mem::offset_of!(CaseSpec, tree), 0);
        assert_eq!(core::mem::offset_of!(CaseSpec, name), 24);
        assert_eq!(core::mem::offset_of!(CaseSpec, layout), 40);
        assert_eq!(core::mem::offset_of!(CaseSpec, searches), 56);
        assert_eq!(core::mem::offset_of!(CaseSpec, bits), 64);
        assert_eq!(core::mem::offset_of!(CaseSpec, sw_prefetch), 68);
        assert_eq!(core::mem::size_of::<CaseSpec>(), 72);
    }
}
