//! Table 3 — summary of the cache-conscious data placement techniques.
//!
//! Qualitative rows come from the paper; the "performance" column is
//! backed by this reproduction's own measurements (see EXPERIMENTS.md
//! for the full numbers).

use cc_bench::header;
use cc_sweep::Sweep;

fn main() {
    header(
        "Table 3: summary of cache-conscious data placement techniques",
        "",
    );
    println!(
        "{:<12} {:<12} {:<11} {:<13} {:<12} {:<16}",
        "technique", "structures", "prog. knowl.", "arch. knowl.", "src changes", "performance"
    );
    let rows = [
        ("CC design", "universal", "high", "high", "large", "high"),
        (
            "ccmorph",
            "tree-like",
            "moderate",
            "low",
            "small",
            "moderate-high",
        ),
        (
            "ccmalloc",
            "universal",
            "low",
            "none",
            "small",
            "moderate-high",
        ),
    ];
    // The table has no simulation cells, but it rides the same harness as
    // the figures: each row is a (trivial) sweep cell, and the runner's
    // order guarantee keeps the output identical to a serial loop. There
    // are likewise no traces here for the `TraceStore` to cache and
    // nothing to shard — the trace-replay plumbing that fig5/fig10/
    // ablation share (see `cc_bench::replay`) starts where a cell has
    // memory traffic, which these rows do not.
    let lines = Sweep::new().run(&rows, |_, &(t, s, p, a, c, perf)| {
        format!("{t:<12} {s:<12} {p:<12} {a:<13} {c:<12} {perf:<16}")
    });
    for line in &lines {
        println!("{line}");
    }
    println!(
        "\nnotes (paper Section 4.5):\n\
         - misuse of ccmorph can affect correctness; misuse of ccmalloc only performance\n\
         - ccmorph requires structures that can be moved (no external interior pointers)\n\
         - both work structure-at-a-time; multiprocessor co-location could create\n\
           false sharing (Section 4.5)\n\
         \n\
         measured headline results of this reproduction (see EXPERIMENTS.md):\n\
         - C-tree vs naive tree: ~4-5x microbenchmark speedup (fig5)\n\
         - ccmorph on Olden: best scheme on health/mst, ~15% on treeadd (fig7)\n\
         - ccmalloc new-block: best allocator on health/mst at small memory cost (fig7)\n\
         - mini-RADIANCE ~20-25%, mini-VIS ~16% faster (fig6)"
    );
    cc_bench::obs::write_obs_out();
}
