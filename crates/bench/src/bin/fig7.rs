//! Figure 7 — cache-conscious data placement on the Olden benchmarks
//! (paper Section 4.4), plus the Section 4.4 memory-overhead numbers.
//!
//! Four benchmarks × eight schemes, each bar normalized to the
//! benchmark's base run and split into busy / instruction-stall /
//! data-stall / store-stall components using the paper's cycle
//! attribution rule on the Table 1 machine.
//!
//! The 32 (benchmark × scheme) cells are independent simulations, so they
//! fan out across the [`Sweep`] runner; results come back in grid order,
//! which keeps the figure byte-identical to a serial run.

use cc_audit::{audit, AuditConfig, AuditInput};
use cc_bench::{header, human_bytes, print_breakdown_row};
use cc_olden::{health, mst, perimeter, treeadd, RunResult, Scheme};
use cc_sim::MachineConfig;
use cc_sweep::Sweep;

/// Prints one benchmark's normalized bars; `results` is in
/// [`Scheme::FIGURE7`] order, so `results[0]` is the base run.
fn print_group(name: &str, results: &[RunResult]) {
    let base = &results[0];
    println!("\n{name}:");
    for r in results {
        print_breakdown_row(r.scheme.label(), &r.breakdown, &base.breakdown);
        assert_eq!(r.checksum, base.checksum, "scheme changed the answer!");
    }
}

fn overhead_line(name: &str, results: &[RunResult]) {
    let by = |s: Scheme| {
        results
            .iter()
            .find(|r| r.scheme == s)
            .expect("scheme present")
            .heap
    };
    let nb = by(Scheme::CcMallocNewBlock);
    let ca = by(Scheme::CcMallocClosest);
    let fa = by(Scheme::CcMallocFirstFit);
    println!(
        "  {name:<10} new-block {:>9}  vs closest {:>+6.1}%  vs first-fit {:>+6.1}%",
        human_bytes(nb.footprint_bytes()),
        nb.overhead_vs(&ca),
        nb.overhead_vs(&fa),
    );
}

/// Audits the final heap layout of each hint-taking scheme: the figure's
/// FA/CA/NA bars are only meaningful if the hints actually co-located
/// what they promised to.
fn audit_lines(name: &str, machine: &MachineConfig, results: &[RunResult]) {
    for r in results.iter().filter(|r| r.scheme.uses_hints()) {
        let input = AuditInput::from_snapshot(&r.snapshot, machine.l2, machine.page_bytes, None);
        let report = audit(&input, &AuditConfig::default());
        let score = report
            .stats
            .colocation_score
            .map_or_else(|| " n/a ".to_string(), |s| format!("{s:.3}"));
        println!(
            "  {name:<10} {:<3} colocation {score}  {} error(s), {} finding(s)",
            r.scheme.label(),
            report.error_count(),
            report.findings.len(),
        );
    }
}

fn main() {
    let machine = MachineConfig::table1();
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    header(
        "Figure 7: performance of cache-conscious data placement (Olden)",
        "normalized execution time (base = 100); bars split into busy/inst/data/store",
    );
    println!(
        "schemes: B=base HP=hw-prefetch SP=sw-prefetch FA/CA/NA=ccmalloc \
         first-fit/closest/new-block CI=ccmorph-cluster CI+Col=+coloring"
    );

    // Benchmark runners, sized per Table 2 (see EXPERIMENTS.md for the
    // treeadd steady-state and perimeter image-scale notes).
    type Runner<'a> = Box<dyn Fn(Scheme) -> RunResult + Sync + 'a>;
    let benches: [(&str, Runner); 4] = [
        (
            "treeadd",
            Box::new(|s| treeadd::run_iters(s, 262_144 / scale.max(1), 4, &machine)),
        ),
        (
            "health",
            Box::new(|s| health::run(s, 3, 500 / scale.max(1).min(8), &machine)),
        ),
        (
            "mst",
            Box::new(|s| mst::run(s, (512 / scale.max(1)) as usize, 16, &machine)),
        ),
        (
            "perimeter",
            Box::new(|s| perimeter::run(s, (1024 / scale.max(1)) as u32, &machine)),
        ),
    ];

    // The full (benchmark × scheme) grid, in figure order.
    let grid: Vec<(usize, Scheme)> = (0..benches.len())
        .flat_map(|b| Scheme::FIGURE7.iter().map(move |&s| (b, s)))
        .collect();
    let cells = Sweep::new().run(&grid, |_, &(b, s)| {
        let (name, runner) = &benches[b];
        let log = format!("  {name}: {}\n", s.label());
        (log, runner(s))
    });
    let (logs, results): (Vec<String>, Vec<RunResult>) = cells.into_iter().unzip();
    for log in &logs {
        eprint!("{log}");
    }
    let by_bench: Vec<&[RunResult]> = results.chunks_exact(Scheme::FIGURE7.len()).collect();
    for ((name, _), results) in benches.iter().zip(&by_bench) {
        print_group(name, results);
    }
    let (ta, he, ms, pe) = (by_bench[0], by_bench[1], by_bench[2], by_bench[3]);

    header(
        "Section 4.4: ccmalloc memory overheads",
        "paper: new-block costs +12% (treeadd), +30% (perimeter), +7% (health), +3% (mst)",
    );
    overhead_line("treeadd", ta);
    overhead_line("health", he);
    overhead_line("mst", ms);
    overhead_line("perimeter", pe);

    header(
        "Layout audit: did the ccmalloc hints deliver?",
        "cc-audit over each hinted scheme's final heap (score = co-located / achievable pairs)",
    );
    audit_lines("treeadd", &machine, ta);
    audit_lines("health", &machine, he);
    audit_lines("mst", &machine, ms);
    audit_lines("perimeter", &machine, pe);

    // Precondition with teeth where the paper guarantees one: treeadd
    // allocates a tree depth-first with parent hints, the workload
    // ccmalloc is built for, so its new-block heap must audit clean. The
    // other benchmarks legitimately fall short (short mst chains, mixed
    // health lifetimes) — exactly why Section 4.4's gains vary.
    let ta_na = ta
        .iter()
        .find(|r| r.scheme == Scheme::CcMallocNewBlock)
        .expect("NA scheme present");
    let report = audit(
        &AuditInput::from_snapshot(&ta_na.snapshot, machine.l2, machine.page_bytes, None),
        &AuditConfig::default(),
    );
    assert_eq!(
        report.error_count(),
        0,
        "treeadd's hinted new-block heap violates the layout it promised:\n{}",
        report.to_text()
    );
}
