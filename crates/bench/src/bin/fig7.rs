//! Figure 7 — cache-conscious data placement on the Olden benchmarks
//! (paper Section 4.4), plus the Section 4.4 memory-overhead numbers.
//!
//! Four benchmarks × eight schemes, each bar normalized to the
//! benchmark's base run and split into busy / instruction-stall /
//! data-stall / store-stall components using the paper's cycle
//! attribution rule on the Table 1 machine.
//!
//! The 32 (benchmark × scheme) cells are independent simulations, so they
//! fan out across the [`Sweep`] runner; results come back in grid order,
//! which keeps the figure byte-identical to a serial run. Each cell also
//! audits its own final heap (for the hint-taking schemes), so a cell's
//! result is a handful of numbers and strings rather than a full layout
//! snapshot — small enough to round-trip a sweep checkpoint file.
//!
//! Set `CC_SWEEP_CHECKPOINT=<path>` to run the sweep crash-durably:
//! completed cells are appended to the file as they finish, and a rerun
//! (same scale) resumes from it instead of recomputing. With the variable
//! unset, nothing touches the filesystem and the figure is byte-identical
//! to every prior release.

use cc_audit::{audit, AuditConfig, AuditInput};
use cc_bench::checkpoint::{self, SEP};
use cc_bench::{header, human_bytes, print_breakdown_row};
use cc_heap::HeapStats;
use cc_olden::{health, mst, perimeter, treeadd, RunResult, Scheme};
use cc_sim::{Breakdown, MachineConfig};

/// The audit verdict of one hinted scheme, flattened out of the
/// [`cc_audit::Report`] so a cell can round-trip a checkpoint file.
struct AuditCell {
    errors: usize,
    findings: usize,
    score: Option<f64>,
    text: String,
}

/// One (benchmark × scheme) cell, reduced to exactly what the printed
/// figure consumes: the stderr progress line, the cycle breakdown, the
/// checksum, the heap footprint (Section 4.4 overheads), and — for
/// hint-taking schemes — the layout audit computed over the snapshot
/// while it was still in hand.
struct Cell {
    log: String,
    breakdown: Breakdown,
    checksum: u64,
    footprint: u64,
    audit: Option<AuditCell>,
}

/// Reduces a [`RunResult`] to its printable facts, auditing the final
/// heap layout where the scheme took placement hints: the figure's
/// FA/CA/NA bars are only meaningful if the hints actually co-located
/// what they promised to.
fn to_cell(machine: &MachineConfig, log: String, r: RunResult) -> Cell {
    let audit_cell = r.scheme.uses_hints().then(|| {
        let input = AuditInput::from_snapshot(&r.snapshot, machine.l2, machine.page_bytes, None);
        let report = audit(&input, &AuditConfig::default());
        AuditCell {
            errors: report.error_count(),
            findings: report.findings.len(),
            score: report.stats.colocation_score,
            text: report.to_text(),
        }
    });
    Cell {
        log,
        breakdown: r.breakdown,
        checksum: r.checksum,
        footprint: r.heap.footprint_bytes(),
        audit: audit_cell,
    }
}

/// Renders a cell for the checkpoint file; the audit score goes as a hex
/// bit pattern so a resumed figure is bit-identical to an uninterrupted
/// one.
fn encode_cell(c: &Cell) -> String {
    let (flag, errors, findings, score, text) = match &c.audit {
        Some(a) => (
            "1",
            a.errors.to_string(),
            a.findings.to_string(),
            checkpoint::encode_opt_f64(a.score),
            a.text.clone(),
        ),
        None => (
            "-",
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ),
    };
    [
        c.log.clone(),
        c.breakdown.busy.to_string(),
        c.breakdown.inst_stall.to_string(),
        c.breakdown.data_stall.to_string(),
        c.breakdown.store_stall.to_string(),
        c.checksum.to_string(),
        c.footprint.to_string(),
        flag.to_string(),
        errors,
        findings,
        score,
        text,
    ]
    .join(&SEP.to_string())
}

fn decode_cell(s: &str) -> Option<Cell> {
    let mut f = s.splitn(12, SEP);
    let log = f.next()?.to_string();
    let busy = f.next()?.parse().ok()?;
    let inst_stall = f.next()?.parse().ok()?;
    let data_stall = f.next()?.parse().ok()?;
    let store_stall = f.next()?.parse().ok()?;
    let checksum = f.next()?.parse().ok()?;
    let footprint = f.next()?.parse().ok()?;
    let flag = f.next()?;
    let errors = f.next()?;
    let findings = f.next()?;
    let score = f.next()?;
    let text = f.next()?;
    let audit = match flag {
        "1" => Some(AuditCell {
            errors: errors.parse().ok()?,
            findings: findings.parse().ok()?,
            score: checkpoint::decode_opt_f64(score)?,
            text: text.to_string(),
        }),
        "-" => None,
        _ => return None,
    };
    Some(Cell {
        log,
        breakdown: Breakdown {
            busy,
            inst_stall,
            data_stall,
            store_stall,
        },
        checksum,
        footprint,
        audit,
    })
}

/// Prints one benchmark's normalized bars; `cells` is in
/// [`Scheme::FIGURE7`] order, so `cells[0]` is the base run.
fn print_group(name: &str, cells: &[Cell]) {
    let base = &cells[0];
    println!("\n{name}:");
    for (s, c) in Scheme::FIGURE7.iter().zip(cells) {
        print_breakdown_row(s.label(), &c.breakdown, &base.breakdown);
        assert_eq!(c.checksum, base.checksum, "scheme changed the answer!");
    }
}

fn overhead_line(name: &str, cells: &[Cell]) {
    let by = |s: Scheme| {
        Scheme::FIGURE7
            .iter()
            .position(|&x| x == s)
            .map(|i| cells[i].footprint)
            .expect("scheme present")
    };
    let nb = by(Scheme::CcMallocNewBlock);
    let ca = by(Scheme::CcMallocClosest);
    let fa = by(Scheme::CcMallocFirstFit);
    println!(
        "  {name:<10} new-block {:>9}  vs closest {:>+6.1}%  vs first-fit {:>+6.1}%",
        human_bytes(nb),
        HeapStats::overhead_pct(nb, ca),
        HeapStats::overhead_pct(nb, fa),
    );
}

/// Prints the per-scheme audit verdicts the cells computed over their
/// final heaps (present exactly for the hint-taking schemes).
fn audit_lines(name: &str, cells: &[Cell]) {
    for (s, c) in Scheme::FIGURE7.iter().zip(cells) {
        let Some(a) = &c.audit else { continue };
        let score = a
            .score
            .map_or_else(|| " n/a ".to_string(), |s| format!("{s:.3}"));
        println!(
            "  {name:<10} {:<3} colocation {score}  {} error(s), {} finding(s)",
            s.label(),
            a.errors,
            a.findings,
        );
    }
}

fn main() {
    let machine = MachineConfig::table1();
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    header(
        "Figure 7: performance of cache-conscious data placement (Olden)",
        "normalized execution time (base = 100); bars split into busy/inst/data/store",
    );
    println!(
        "schemes: B=base HP=hw-prefetch SP=sw-prefetch FA/CA/NA=ccmalloc \
         first-fit/closest/new-block CI=ccmorph-cluster CI+Col=+coloring"
    );

    // Benchmark runners, sized per Table 2 (see EXPERIMENTS.md for the
    // treeadd steady-state and perimeter image-scale notes).
    type Runner<'a> = Box<dyn Fn(Scheme) -> RunResult + Sync + 'a>;
    let benches: [(&str, Runner); 4] = [
        (
            "treeadd",
            Box::new(|s| treeadd::run_iters(s, 262_144 / scale.max(1), 4, &machine)),
        ),
        (
            "health",
            Box::new(|s| health::run(s, 3, 500 / scale.max(1).min(8), &machine)),
        ),
        (
            "mst",
            Box::new(|s| mst::run(s, (512 / scale.max(1)) as usize, 16, &machine)),
        ),
        (
            "perimeter",
            Box::new(|s| perimeter::run(s, (1024 / scale.max(1)) as u32, &machine)),
        ),
    ];

    // The full (benchmark × scheme) grid, in figure order.
    let grid: Vec<(usize, Scheme)> = (0..benches.len())
        .flat_map(|b| Scheme::FIGURE7.iter().map(move |&s| (b, s)))
        .collect();
    let run = |_: usize, _attempt: u32, &(b, s): &(usize, Scheme)| {
        let (name, runner) = &benches[b];
        let log = format!("  {name}: {}\n", s.label());
        to_cell(&machine, log, runner(s))
    };
    // Unlike fig5, these cells drive the stateful per-cycle [`Pipeline`],
    // whose stall attribution depends on global in-order event history —
    // there is no per-set decomposition to shard, so cells stay serial
    // inside and parallel across (see DESIGN.md §10).
    let cells: Vec<Cell> = checkpoint::run_grid(
        "fig7",
        &format!("fig7-s{scale}"),
        &grid,
        run,
        encode_cell,
        decode_cell,
    );
    for c in &cells {
        eprint!("{}", c.log);
    }
    let by_bench: Vec<&[Cell]> = cells.chunks_exact(Scheme::FIGURE7.len()).collect();
    for ((name, _), cells) in benches.iter().zip(&by_bench) {
        print_group(name, cells);
    }
    let (ta, he, ms, pe) = (by_bench[0], by_bench[1], by_bench[2], by_bench[3]);

    header(
        "Section 4.4: ccmalloc memory overheads",
        "paper: new-block costs +12% (treeadd), +30% (perimeter), +7% (health), +3% (mst)",
    );
    overhead_line("treeadd", ta);
    overhead_line("health", he);
    overhead_line("mst", ms);
    overhead_line("perimeter", pe);

    header(
        "Layout audit: did the ccmalloc hints deliver?",
        "cc-audit over each hinted scheme's final heap (score = co-located / achievable pairs)",
    );
    audit_lines("treeadd", ta);
    audit_lines("health", he);
    audit_lines("mst", ms);
    audit_lines("perimeter", pe);

    // Precondition with teeth where the paper guarantees one: treeadd
    // allocates a tree depth-first with parent hints, the workload
    // ccmalloc is built for, so its new-block heap must audit clean. The
    // other benchmarks legitimately fall short (short mst chains, mixed
    // health lifetimes) — exactly why Section 4.4's gains vary.
    let na = Scheme::FIGURE7
        .iter()
        .position(|&s| s == Scheme::CcMallocNewBlock)
        .expect("NA scheme present");
    let ta_na = ta[na].audit.as_ref().expect("NA scheme audits");
    assert_eq!(
        ta_na.errors, 0,
        "treeadd's hinted new-block heap violates the layout it promised:\n{}",
        ta_na.text
    );
    cc_bench::obs::write_obs_out();
}
