//! Figure 5 — the binary tree microbenchmark (paper Section 4.2).
//!
//! Measures the average search time of a large balanced binary search
//! tree under four layouts, as a function of the number of repeated
//! random searches:
//!
//! * randomly clustered binary tree,
//! * depth-first clustered binary tree,
//! * in-core B-tree (colored),
//! * transparent C-tree (`ccmorph`: subtree clustering + coloring).
//!
//! The paper's tree has 2,097,151 keys and consumes 40 MB — forty times
//! the E5000's 1 MB L2 — and is searched up to one million times. Times
//! come from the Section 5.1 latency formula over the simulated cache's
//! measured behaviour (plus TLB penalties), converted to microseconds at
//! the machine's 167 MHz clock.
//!
//! The four layouts are independent simulation cells, so they fan out
//! across the [`Sweep`] runner; every cell rebuilds its layout from
//! scratch (replaying the same deterministic mutation sequence the serial
//! version applied), so the figure is byte-identical no matter how many
//! workers run it.
//!
//! Set `CC_SWEEP_CHECKPOINT=<path>` to run the sweep crash-durably:
//! completed cells are appended to the file as they finish, and a rerun
//! (same key count) resumes from it instead of recomputing. With the
//! variable unset, nothing touches the filesystem and the figure is
//! byte-identical to every prior release.

use cc_audit::{audit, AffinityKind, AuditConfig, AuditInput, Report, Rule};
use cc_bench::checkpoint::{self, SEP};
use cc_bench::header;
use cc_bench::replay::{build_bst, SearchReplay, TreeSpec};
use cc_core::ccmorph::CcMorphParams;
use cc_heap::VirtualSpace;
use cc_sim::event::TraceBuffer;
use cc_sim::MachineConfig;
use cc_sweep::{Sweep, TraceKey, TraceStore};
use cc_trees::bst::Bst;
use cc_trees::btree::BTree;
use cc_trees::BST_NODE_BYTES;

/// Search-count checkpoints (the x-axis decades).
const CHECKPOINTS: [u64; 6] = [10, 100, 1_000, 10_000, 100_000, 1_000_000];

fn keys(n: u64) -> u64 {
    n // keys are 2*i for i in 0..n; searches draw uniformly
}

/// Runs 1M random searches against `search` through the set-sharded
/// replayer, reporting average microseconds per search at each
/// checkpoint. Simulated times are bit-identical to the original serial
/// [`cc_sim::MemorySink`] loop for every shard count (the sharded
/// differential suite enforces this), so the figure does not depend on
/// `env`'s geometry. With `CC_TRACE_CACHE` set, recorded trace segments
/// come back from the content-addressed store on reruns and the search
/// closure is never invoked.
fn measure<F>(env: &CellEnv, key: TraceKey, mut search: F) -> Vec<f64>
where
    F: FnMut(u64, &mut TraceBuffer),
{
    let mut replay = SearchReplay::new(
        env.machine,
        keys(env.n),
        0x51EE7,
        env.shards,
        env.store.as_ref(),
        key,
    );
    let mut out = Vec::new();
    for &cp in &CHECKPOINTS {
        replay.advance_to(cp, &mut search);
        out.push(replay.avg_us_per_search());
    }
    assert_eq!(
        replay.degradation(),
        cc_sim::ShardDegradation::default(),
        "fig5 replay degraded; the figure would hide a faulty engine"
    );
    out
}

/// Everything a fig5 cell needs besides its layout: the machine, tree
/// size, intra-cell shard count, and (when `CC_TRACE_CACHE` is set) the
/// disk-backed trace store.
struct CellEnv {
    machine: MachineConfig,
    n: u64,
    shards: usize,
    store: Option<TraceStore>,
}

/// Audits one layout, appending its one-line verdict to the cell's log;
/// returns the report so `main` can enforce the preconditions the figure
/// depends on.
fn audit_layout(name: &str, input: &AuditInput, log: &mut String) -> Report {
    let report = audit(input, &AuditConfig::default());
    let score = report
        .stats
        .colocation_score
        .map_or_else(|| "  n/a ".to_string(), |s| format!("{s:.4}"));
    log.push_str(&format!(
        "  audit {name:<24} colocation {score}  {} error(s), {} finding(s)\n",
        report.error_count(),
        report.findings.len(),
    ));
    report
}

/// The four fig5 layouts, as independent sweep cells.
#[derive(Clone, Copy)]
enum Layout {
    RandomClustered,
    DepthFirstClustered,
    ColoredBTree,
    TransparentCTree,
}

/// The audit facts `main` asserts on, flattened out of a [`Report`] so a
/// cell can round-trip through a sweep checkpoint file.
struct AuditSummary {
    color01_findings: usize,
    colocation_score: Option<f64>,
    text: String,
}

impl AuditSummary {
    fn of(report: &Report) -> Self {
        AuditSummary {
            color01_findings: report.of_rule(Rule::Color01).len(),
            colocation_score: report.stats.colocation_score,
            text: report.to_text(),
        }
    }
}

/// One computed cell: its row label, checkpoint times, the progress/audit
/// lines the serial version would have streamed to stderr, and the audit
/// summary (where the layout has one).
struct Cell {
    label: &'static str,
    times: Vec<f64>,
    log: String,
    audit: Option<AuditSummary>,
}

/// Renders a cell for the checkpoint file; times go as hex bit patterns so
/// a resumed figure is bit-identical to an uninterrupted one.
fn encode_cell(cell: &Cell) -> String {
    let (flag, errs, score, text) = match &cell.audit {
        Some(a) => (
            "1",
            a.color01_findings.to_string(),
            checkpoint::encode_opt_f64(a.colocation_score),
            a.text.clone(),
        ),
        None => ("-", String::new(), String::new(), String::new()),
    };
    [
        cell.label.to_string(),
        checkpoint::encode_f64s(&cell.times),
        cell.log.clone(),
        flag.to_string(),
        errs,
        score,
        text,
    ]
    .join(&SEP.to_string())
}

fn decode_cell(s: &str) -> Option<Cell> {
    let mut fields = s.splitn(7, SEP);
    let label = match fields.next()? {
        "random clustered" => "random clustered",
        "depth-first clustered" => "depth-first clustered",
        "in-core B-tree" => "in-core B-tree",
        "transparent C-tree" => "transparent C-tree",
        _ => return None,
    };
    let times = checkpoint::decode_f64s(fields.next()?)?;
    let log = fields.next()?.to_string();
    let flag = fields.next()?;
    let errs = fields.next()?;
    let score = fields.next()?;
    let text = fields.next()?;
    let audit = match flag {
        "1" => Some(AuditSummary {
            color01_findings: errs.parse().ok()?,
            colocation_score: checkpoint::decode_opt_f64(score)?,
            text: text.to_string(),
        }),
        "-" => None,
        _ => return None,
    };
    Some(Cell {
        label,
        times,
        log,
        audit,
    })
}

fn tree_input(machine: &MachineConfig, t: &Bst) -> AuditInput {
    AuditInput::from_tree_addrs(
        t,
        |id| Some(t.addr_of(id)),
        BST_NODE_BYTES,
        machine.l2,
        machine.page_bytes,
        None,
        AffinityKind::ParentChild,
    )
}

/// The shared layout recipes (the same [`TreeSpec`]s the engine benchmark
/// records): fig5's trees all start from the random scatter.
const SPEC_RANDOM: TreeSpec = TreeSpec {
    randomize: Some(0xA11),
    depth_first: false,
    morph: false,
};
const SPEC_DFS: TreeSpec = TreeSpec {
    randomize: Some(0xA11),
    depth_first: true,
    morph: false,
};
const SPEC_CTREE: TreeSpec = TreeSpec {
    randomize: Some(0xA11),
    depth_first: true,
    morph: true,
};

/// Builds the cell's layout by replaying the exact mutation sequence the
/// serial figure applied to its one shared tree (random, then depth-first
/// on top of it, then morph on top of that), audits it, and measures it.
fn run_cell(env: &CellEnv, layout: Layout) -> Cell {
    let machine = &env.machine;
    let n = env.n;
    let base = TraceKey::new("fig5");
    match layout {
        Layout::RandomClustered => {
            let mut log = String::from("building random-clustered tree…\n");
            let t = build_bst(machine, n, SPEC_RANDOM);
            let report = audit_layout("random clustered", &tree_input(machine, &t), &mut log);
            let times = measure(env, SPEC_RANDOM.fold_key(base), |k, buf| {
                t.search(k, buf, false);
            });
            Cell {
                label: "random clustered",
                times,
                log,
                audit: Some(AuditSummary::of(&report)),
            }
        }
        Layout::DepthFirstClustered => {
            let mut log = String::from("building depth-first clustered tree…\n");
            let t = build_bst(machine, n, SPEC_DFS);
            audit_layout("depth-first clustered", &tree_input(machine, &t), &mut log);
            let times = measure(env, SPEC_DFS.fold_key(base), |k, buf| {
                t.search(k, buf, false);
            });
            Cell {
                label: "depth-first clustered",
                times,
                log,
                audit: None,
            }
        }
        Layout::ColoredBTree => {
            let log = String::from("building colored B-tree…\n");
            let ks: Vec<u64> = (0..n).map(|i| 2 * i).collect();
            let mut bt = BTree::build_from_sorted(&ks, machine.l2.block_bytes(), 0.7);
            let mut vs = VirtualSpace::new(machine.page_bytes);
            bt.color(&mut vs, machine, 0.5);
            let times = measure(env, TraceKey::new("fig5-btree"), |k, buf| {
                bt.search(k, buf);
            });
            Cell {
                label: "in-core B-tree",
                times,
                log,
                audit: None,
            }
        }
        Layout::TransparentCTree => {
            let mut log = String::from("building transparent C-tree…\n");
            // The first two layout steps are the shared recipe; the morph
            // itself stays inline because the audit needs its `Layout`.
            let mut t = build_bst(machine, n, SPEC_DFS);
            let mut vs2 = VirtualSpace::new(machine.page_bytes);
            let params = CcMorphParams::clustering_and_coloring(machine, BST_NODE_BYTES);
            let layout = t.morph(&mut vs2, &params);
            let report = audit_layout(
                "transparent C-tree",
                &AuditInput::from_tree_layout(&t, &layout, &params),
                &mut log,
            );
            let times = measure(env, SPEC_CTREE.fold_key(base), |k, buf| {
                t.search(k, buf, false);
            });
            Cell {
                label: "transparent C-tree",
                times,
                log,
                audit: Some(AuditSummary::of(&report)),
            }
        }
    }
}

fn main() {
    let machine = MachineConfig::ultrasparc_e5000();
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or((1 << 21) - 1);

    header(
        "Figure 5: binary tree microbenchmark",
        &format!(
            "{n} keys, {} of tree data ({}x the 1 MB L2); avg search time vs repeated searches",
            cc_bench::human_bytes(n * BST_NODE_BYTES),
            n * BST_NODE_BYTES / (1 << 20),
        ),
    );

    let grid = [
        Layout::RandomClustered,
        Layout::DepthFirstClustered,
        Layout::ColoredBTree,
        Layout::TransparentCTree,
    ];
    // When cells are scarcer than cores, each cell's replay shards its
    // trace across the idle ones; the disk trace store only engages when
    // the operator opts in with CC_TRACE_CACHE.
    let disk_store = TraceStore::from_env();
    let env = CellEnv {
        machine,
        n,
        shards: Sweep::new().intra_cell_shards(grid.len()),
        store: disk_store.has_disk().then_some(disk_store),
    };
    let run = |_: usize, _attempt: u32, &layout: &Layout| run_cell(&env, layout);
    let cells: Vec<Cell> = checkpoint::run_grid(
        "fig5",
        &format!("fig5-n{n}"),
        &grid,
        run,
        encode_cell,
        decode_cell,
    );
    for cell in &cells {
        eprint!("{}", cell.log);
    }

    let random_audit = cells[0].audit.as_ref().expect("random cell audits");
    let ctree_audit = cells[3].audit.as_ref().expect("C-tree cell audits");
    // Preconditions for the figure's claims: the C-tree's coloring must
    // hold (no hot node in a cold set), and its clustering must beat the
    // random baseline. No such guarantee against depth-first order: with
    // an odd number of tree levels (the paper's 2^21 - 1 keys) subtree
    // clustering leaves every leaf in a singleton cluster, capping the
    // raw pair count at ~0.5 while depth-first order scores ~0.66 — yet
    // the C-tree still wins on time because its co-located pairs sit on
    // every search path, a distinction the unweighted score cannot see.
    assert!(
        ctree_audit.color01_findings == 0,
        "C-tree coloring is broken; Figure 5 would measure a bogus layout:\n{}",
        ctree_audit.text
    );
    let score = |r: &AuditSummary| r.colocation_score.unwrap_or(0.0);
    assert!(
        score(ctree_audit) >= score(random_audit) - 1e-9,
        "C-tree co-locates worse than the random baseline"
    );

    println!("\navg search time (microseconds) after N random searches:");
    print!("{:<24}", "layout \\ searches");
    for cp in CHECKPOINTS {
        print!("{cp:>10}");
    }
    println!();
    for cell in &cells {
        print!("{:<24}", cell.label);
        for t in &cell.times {
            print!("{t:>10.2}");
        }
        println!();
    }

    let at = |i: usize| cells[i].times.last().copied().unwrap_or(f64::NAN);
    let (rand, dfs, btree, ctree) = (at(0), at(1), at(2), at(3));
    println!("\nsteady-state ratios (paper's claims in parentheses):");
    println!(
        "  C-tree vs random clustered:      {:.2}x  (paper: 4-5x)",
        rand / ctree
    );
    println!(
        "  C-tree vs depth-first clustered: {:.2}x  (paper: 2.5-3x)",
        dfs / ctree
    );
    println!(
        "  C-tree vs B-tree:                {:.2}x  (paper: ~1.5x)",
        btree / ctree
    );
    let mut reg = cc_obs::MetricsRegistry::new();
    reg.set("fig5.cells", cells.len() as u64);
    reg.set("fig5.keys", n);
    if let Some(store) = &env.store {
        cc_sweep::obs::export_store(&mut reg, "fig5.trace_store", &store.counters());
    }
    cc_bench::obs::absorb(&reg);
    cc_bench::obs::write_obs_out();
}
