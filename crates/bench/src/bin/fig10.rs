//! Figure 10 — predicted vs. actual C-tree speedup (paper Section 5.4).
//!
//! The analytic model (Figure 9's closed form fed into Figure 8's speedup
//! equation) predicts the transparent C-tree's advantage over the naive
//! (randomly clustered) tree; the simulator measures it. The paper's
//! experiment sweeps tree sizes from 262,144 to 4,194,304 keys with
//! subtrees of 3 nodes per block and half the L2 colored hot, and finds
//! the model "underestimates the actual speedup by only 15%", partly
//! because it ignores TLB effects — which the simulator does model.

use cc_bench::header;
use cc_bench::replay::steady_cycles_per_search;
use cc_core::ccmorph::CcMorphParams;
use cc_core::cluster::Order;
use cc_heap::VirtualSpace;
use cc_model::ctree::predicted_speedup;
use cc_sim::MachineConfig;
use cc_sweep::{Sweep, TraceKey, TraceStore};
use cc_trees::bst::Bst;
use cc_trees::BST_NODE_BYTES;

/// Searches used to reach and measure steady state at each size.
const WARMUP: u64 = 50_000;
const MEASURE: u64 = 150_000;

/// Steady-state cycles per search through the set-sharded replayer. The
/// sizes here run serially (each measurement depends on the previous
/// morph), so all host threads go to shards within each measurement; the
/// trace store keys on the layout tag (`n` and the seed fold in via
/// [`steady_cycles_per_search`]), letting reruns under `CC_TRACE_CACHE`
/// skip trace generation.
fn measured_time(
    machine: &MachineConfig,
    t: &Bst,
    n: u64,
    seed: u64,
    shards: usize,
    store: Option<&TraceStore>,
    tag: &'static str,
) -> f64 {
    steady_cycles_per_search(
        *machine,
        n,
        seed,
        shards,
        store,
        TraceKey::new(tag).machine(machine),
        WARMUP,
        MEASURE,
        |k, buf| {
            t.search(k, buf, false);
        },
    )
}

fn main() {
    let machine = MachineConfig::ultrasparc_e5000();
    let disk_store = TraceStore::from_env();
    let store = disk_store.has_disk().then_some(&disk_store);
    let shards = Sweep::new().intra_cell_shards(1);
    header(
        "Figure 10: predicted and actual speedup for C-trees",
        "steady-state speedup of the transparent C-tree over the randomly-clustered tree",
    );
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>10}",
        "tree keys", "predicted", "measured", "pred/meas", "model err"
    );

    for log_n in 18..=22u32 {
        let n = (1u64 << log_n) - 1;
        let predicted = predicted_speedup(n, machine.l2, BST_NODE_BYTES, 0.5, &machine.latency);

        let mut tree = Bst::build_complete(n);
        tree.layout_sequential(Order::Random { seed: 0xBAD });
        let naive = measured_time(&machine, &tree, n, 77, shards, store, "fig10-naive");

        let mut vs = VirtualSpace::new(machine.page_bytes);
        tree.morph(
            &mut vs,
            &CcMorphParams::clustering_and_coloring(&machine, BST_NODE_BYTES),
        );
        let cc = measured_time(&machine, &tree, n, 77, shards, store, "fig10-ctree");

        let measured = naive / cc;
        println!(
            "{:>12} {:>12.2} {:>12.2} {:>12.2} {:>9.1}%",
            n,
            predicted,
            measured,
            predicted / measured,
            100.0 * (predicted - measured) / measured
        );
    }
    println!(
        "\npaper: model underestimates measured speedup by ~15% (TLB and L1\n\
         effects absent from the model); both curves decline with tree size."
    );
    cc_bench::obs::write_obs_out();
}
