//! Figure 6 — the RADIANCE and VIS macrobenchmarks (paper Section 4.3).
//!
//! RADIANCE's octree is reorganized with `ccmorph` (clustering, then
//! clustering + coloring; reorganization cost included, as in the paper);
//! VIS's BDD nodes are allocated with `ccmalloc`'s new-block strategy.
//! The paper measured a 42% speedup for RADIANCE and 27% for VIS.

use cc_apps::radiance::{self, Layout, RadianceParams};
use cc_apps::vis::{self, AllocPolicy, VisParams};
use cc_bench::{header, print_breakdown_row};
use cc_sim::MachineConfig;

fn main() {
    let machine = MachineConfig::ultrasparc_e5000();
    let quick = std::env::args().any(|a| a == "--quick");

    header(
        "Figure 6: RADIANCE and VIS applications",
        "normalized execution time (base = 100); reorganization overhead included",
    );

    // ---- mini-RADIANCE ----
    let rp = if quick {
        RadianceParams {
            objects: 20_000,
            rays: 40_000,
            ..RadianceParams::default()
        }
    } else {
        RadianceParams::default()
    };
    eprintln!(
        "radiance: building {} objects, casting {} rays…",
        rp.objects, rp.rays
    );
    let base = radiance::run(Layout::Base, &rp, &machine);
    println!("\nRADIANCE (octree ray caster):");
    print_breakdown_row(Layout::Base.label(), &base.breakdown, &base.breakdown);
    for l in [Layout::Cluster, Layout::ClusterColor] {
        eprintln!("radiance: {}…", l.label());
        let r = radiance::run(l, &rp, &machine);
        assert_eq!(r.checksum, base.checksum, "layout changed the image!");
        print_breakdown_row(l.label(), &r.breakdown, &base.breakdown);
    }
    println!("  (paper: clustering+coloring gave a 42% speedup => bar at ~70)");

    // ---- mini-VIS ----
    let vp = if quick {
        VisParams {
            bits: 12,
            evals: 120_000,
            ..VisParams::default()
        }
    } else {
        VisParams::default()
    };
    eprintln!("vis: building {}-bit adder BDDs…", vp.bits);
    let vbase = vis::run(AllocPolicy::Base, &vp, &machine);
    println!(
        "\nVIS (ROBDD verification engine, {} BDD nodes):",
        vbase.nodes
    );
    print_breakdown_row(
        AllocPolicy::Base.label(),
        &vbase.breakdown,
        &vbase.breakdown,
    );
    eprintln!("vis: ccmalloc new-block…");
    let vcc = vis::run(AllocPolicy::CcMallocNewBlock, &vp, &machine);
    assert_eq!(vcc.checksum, vbase.checksum, "policy changed the answer!");
    print_breakdown_row(
        AllocPolicy::CcMallocNewBlock.label(),
        &vcc.breakdown,
        &vbase.breakdown,
    );
    println!("  (paper: ccmalloc new-block gave a 27% speedup => bar at ~79)");
    cc_bench::obs::write_obs_out();
}
