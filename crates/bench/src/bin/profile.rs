//! **`cc-profile`** — the miss-attribution profiler CLI.
//!
//! Runs a quick cut of the Figure 5 tree-search workload (the
//! random-clustered layout, the one the paper's transformations exist to
//! fix) with per-region miss attribution enabled, and reports where the
//! misses actually land:
//!
//! * per-region demand accesses / hits / misses / evictions at L1 and L2,
//! * every cross-region conflict pair — "region A lost N blocks to
//!   region B" — rendered both raw and as `cc-audit` CONFLICT-01
//!   findings.
//!
//! The tree's address extent is split into two equal halves
//! (`tree/lower-half`, `tree/upper-half`); a tree larger than L2 under
//! random search *must* show the halves evicting each other, so the run
//! exits nonzero if no cross-region pair is measured — that would mean
//! the profiler lost its hooks.
//!
//! ```text
//! usage: cc-profile [keys] [searches]        (defaults: 65535, 50000)
//! ```
//!
//! A second, *field-granular* pass runs the same random-search workload
//! over the fat-node tree with field attribution enabled and prints a
//! field-hotness heat map — which **fields** (not regions) the misses
//! land on — plus the reorder it suggests. The measured heat is written
//! as a flat `"FatNode.field": misses` hotness spec that round-trips
//! through `cc-lint --hot`: the profiler itself re-parses its own output
//! and feeds it to the static analyzer, so the printed suggestions are
//! ranked by measured misses.
//!
//! With `CC_OBS_OUT=<path>` set, the unified metrics snapshot goes to
//! `<path>`, the span trace to `<path>.trace.json`, the full attribution
//! profile (byte-stable JSON) to `<path>.attrib.json`, the region-join
//! hotness spec to `<path>.hot.json`, and the field heat map to
//! `<path>.fieldhot.json`.

use cc_bench::field::{aos_base, field_map_for_aos};
use cc_bench::replay::{build_bst, SearchReplay, TreeSpec};
use cc_bench::{bar, header, human_bytes, obs};
use cc_core::rng::SplitMix64;
use cc_obs::attrib::Level;
use cc_obs::{MissProfile, RegionId, RegionMap};
use cc_sim::{MachineConfig, MemorySink};
use cc_sweep::TraceKey;
use cc_trees::fat::{fat_schema, FatBst};
use cc_trees::BST_NODE_BYTES;
use std::sync::Arc;

/// The fig5 random-clustered recipe (same seed as the figure).
const SPEC_RANDOM: TreeSpec = TreeSpec {
    randomize: Some(0xA11),
    depth_first: false,
    morph: false,
};

fn print_tally(profile: &MissProfile, region: RegionId, map: &RegionMap) {
    for level in [Level::L1, Level::L2] {
        let t = profile.tally(level, region);
        let miss_pct = if t.accesses == 0 {
            0.0
        } else {
            100.0 * t.misses as f64 / t.accesses as f64
        };
        println!(
            "  {:<18} {:>3}  {:>10} {:>10} {:>10} {:>9.2}% {:>10}",
            map.name(region),
            match level {
                Level::L1 => "L1",
                Level::L2 => "L2",
            },
            t.accesses,
            t.hits,
            t.misses,
            miss_pct,
            t.evictions,
        );
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u64 = args.and_then_parse(65_535);
    let searches: u64 = args.and_then_parse(50_000);

    let machine = MachineConfig::ultrasparc_e5000();
    header(
        "cc-profile: per-region miss attribution",
        &format!(
            "{n} keys ({} of tree data), {searches} random searches, random-clustered layout",
            human_bytes(n * BST_NODE_BYTES),
        ),
    );

    let tree = obs::span("build tree", "profile", 0, || {
        build_bst(&machine, n, SPEC_RANDOM)
    });

    // Two regions covering the tree's address extent, split at the
    // midpoint. The random layout scatters nodes across the whole
    // extent, so every search path crosses both halves.
    let addrs = || (0..n as usize).map(|id| tree.addr_of(id));
    let lo = addrs().min().expect("tree is nonempty");
    let hi = addrs().max().expect("tree is nonempty") + BST_NODE_BYTES;
    let mid = lo + (hi - lo) / 2;
    let mut map = RegionMap::new();
    let lower = map.register("tree/lower-half", lo, mid);
    let upper = map.register("tree/upper-half", mid, hi);
    let map = Arc::new(map);

    let mut replay = SearchReplay::new(machine, n, 0x51EE7, 1, None, TraceKey::new("profile"));
    replay.enable_attribution(Arc::clone(&map));
    replay.advance_to(searches, |k, buf| {
        tree.search(k, buf, false);
    });
    assert_eq!(
        replay.degradation(),
        cc_sim::ShardDegradation::default(),
        "profiled replay degraded; the attribution below would be partial"
    );
    let profile = replay.attribution().expect("attribution was enabled");

    println!(
        "\navg simulated search time: {:.2} us",
        replay.avg_us_per_search()
    );

    println!("\nper-region attribution:");
    println!(
        "  {:<18} {:>3}  {:>10} {:>10} {:>10} {:>10} {:>10}",
        "region", "lvl", "accesses", "hits", "misses", "miss%", "evictions"
    );
    for region in [RegionId::OTHER, lower, upper] {
        print_tally(&profile, region, &map);
    }

    let pairs = profile.conflict_pairs();
    let cross: Vec<_> = pairs.iter().filter(|p| p.victim != p.evictor).collect();
    println!("\nconflict pairs (victim lost blocks to evictor):");
    for p in &pairs {
        println!(
            "  {:<3} {:<18} <- {:<18} {:>10}",
            match p.level {
                Level::L1 => "L1",
                Level::L2 => "L2",
            },
            map.name(p.victim),
            map.name(p.evictor),
            p.count,
        );
    }

    println!("\ncc-audit CONFLICT-01 findings:");
    for f in cc_audit::attrib::conflict_findings(&profile, 1) {
        println!("  [{}] {}", f.rule.id(), f.message);
    }

    let hot = lint_join(&profile);
    let field_hot = field_heat_map(&machine, n.min(8_191), searches.min(20_000));

    // Unified metrics snapshot: the profiler's headline numbers join the
    // process-wide registry the figure binaries share.
    obs::set("profile.keys", n);
    obs::set("profile.searches", searches);
    obs::set("profile.conflict_pairs.cross_region", cross.len() as u64);
    for (level, tag) in [(Level::L1, "l1"), (Level::L2, "l2")] {
        let t = profile.totals(level);
        obs::set(&format!("profile.{tag}.accesses"), t.accesses);
        obs::set(&format!("profile.{tag}.misses"), t.misses);
        obs::set(&format!("profile.{tag}.evictions"), t.evictions);
    }
    if let Some(path) = std::env::var_os("CC_OBS_OUT") {
        if !path.is_empty() {
            let mut p = path.clone();
            p.push(".attrib.json");
            if let Err(e) = std::fs::write(&p, profile.to_json()) {
                eprintln!(
                    "warning: CC_OBS_OUT {}: {e}",
                    std::path::Path::new(&p).display()
                );
            }
            let mut p = path.clone();
            p.push(".hot.json");
            if let Err(e) = std::fs::write(&p, hot.to_json()) {
                eprintln!(
                    "warning: CC_OBS_OUT {}: {e}",
                    std::path::Path::new(&p).display()
                );
            }
            let mut p = path;
            p.push(".fieldhot.json");
            if let Err(e) = std::fs::write(&p, field_hot.to_json()) {
                eprintln!(
                    "warning: CC_OBS_OUT {}: {e}",
                    std::path::Path::new(&p).display()
                );
            }
        }
    }
    obs::write_obs_out();

    if cross.is_empty() {
        eprintln!(
            "error: no cross-region conflict pair measured — \
             the attribution hooks are not seeing evictions"
        );
        std::process::exit(1);
    }
}

/// Joins the measured per-region miss weights onto the static layout
/// model: every tree-region miss is a miss on the BST `Node`'s
/// traversal-hot fields, so the combined weight lands on
/// `Node.{key,left,right}` and the cc-lint run over the cc-trees source
/// ranks its suggestions by misses actually measured. The resulting
/// hotness spec is also what goes to `<CC_OBS_OUT>.hot.json` — feed it
/// back with `cc-lint --hot`.
fn lint_join(profile: &MissProfile) -> cc_lint::HotSpec {
    let mut node_weight = 0.0;
    for level in [Level::L1, Level::L2] {
        for (region, misses) in profile.region_weights(level) {
            if region.starts_with("tree/") {
                node_weight += misses;
            }
        }
    }
    let hot = cc_lint::HotSpec::from_entries(["key", "left", "right"].map(|field| {
        // The traversal loads the whole node; each hot field carries the
        // full measured miss count (weights rank, they do not apportion).
        (format!("Node.{field}"), node_weight)
    }));

    let trees_src = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../trees/src");
    let mut sources = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&trees_src) {
        let mut paths: Vec<_> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        paths.sort();
        for p in paths {
            if p.extension().is_some_and(|x| x == "rs") {
                if let Ok(src) = std::fs::read_to_string(&p) {
                    sources.push((
                        format!("cc-trees/src/{}", p.file_name().unwrap().to_string_lossy()),
                        src,
                    ));
                }
            }
        }
    }
    if sources.is_empty() {
        eprintln!("warning: cc-trees source not found; skipping static lint join");
        return hot;
    }

    let report = cc_lint::analyze_sources(&sources, &hot, &cc_lint::LintConfig::default());
    println!("\nstatic layout suggestions (cc-lint over cc-trees, ranked by measured misses):");
    let mut findings: Vec<_> = report.findings.iter().collect();
    findings.sort_by(|a, b| {
        b.weight
            .unwrap_or(0.0)
            .partial_cmp(&a.weight.unwrap_or(0.0))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.key().cmp(&b.key()))
    });
    if findings.is_empty() {
        println!("  clean: no static findings over the tree structures");
    }
    for f in findings.iter().take(8) {
        let weight = f
            .weight
            .map_or(String::from("unmeasured"), |w| format!("{w:.0} misses"));
        println!("  [{}] ({weight}) {}::{}", f.rule.id(), f.file, f.strukt);
        println!("      {}", f.suggestion);
    }
    hot
}

/// A layout model of the fat node as `cc-lint` sees declared source:
/// same field names, sizes, and declaration order as
/// `cc_trees::fat::fat_schema()`, so the measured heat joins cleanly.
/// The `FatArena` wrapper gives SOA-01 the AoS array context the paper's
/// splitting transformation targets.
const FAT_MODEL_SRC: &str = "\
#[repr(C)]
pub struct FatNode {
    pub key: u64,
    pub meta: [u64; 2],
    pub left: u32,
    pub right: u32,
    pub payload: [u64; 4],
}

pub struct FatArena {
    pub nodes: Vec<FatNode>,
}
";

/// The field-granular pass: runs the fat-node search workload with field
/// attribution, prints the per-field miss heat map and the hot-prefix
/// reorder it implies, then round-trips the measured spec through its
/// own serialized form into `cc-lint` (exactly what `cc-lint --hot
/// <CC_OBS_OUT>.fieldhot.json` would do) and prints the analyzer's
/// findings. Returns the spec that goes to `.fieldhot.json`.
fn field_heat_map(machine: &MachineConfig, n: u64, searches: u64) -> cc_lint::HotSpec {
    let t = obs::span("build fat tree", "profile", 0, || FatBst::build_complete(n));
    let fmap = Arc::new(field_map_for_aos(aos_base(&t), n));
    let mut regions = RegionMap::new();
    regions.register("fat", 0, u64::MAX);
    let mut sink = MemorySink::new(*machine);
    sink.enable_attribution(Arc::new(regions));
    sink.enable_field_attribution(Arc::clone(&fmap));
    let mut rng = SplitMix64::new(0xFA7);
    for _ in 0..searches {
        t.search(2 * rng.below(n), &mut sink);
    }
    let p = sink.attribution().expect("field attribution was enabled");

    let schema = fat_schema();
    let weights: Vec<(String, f64)> = [Level::L1, Level::L2]
        .iter()
        .flat_map(|&level| p.field_weights(level))
        .fold(Vec::new(), |mut acc: Vec<(String, f64)>, (name, w)| {
            match acc.iter_mut().find(|(n, _)| n == name) {
                Some((_, total)) => *total += w,
                None => acc.push((name.to_string(), w)),
            }
            acc
        });
    let heat = |field: &str| {
        weights
            .iter()
            .find(|(n, _)| n == field)
            .map_or(0.0, |(_, w)| *w)
    };
    let total: f64 = weights.iter().map(|(_, w)| w).sum();

    println!(
        "\nfield heat map (fat-node AoS, {} random searches, L1+L2 misses):",
        searches
    );
    for f in schema.fields() {
        let w = heat(&f.name);
        let pct = if total > 0.0 { 100.0 * w / total } else { 0.0 };
        println!(
            "  FatNode.{:<8} {:>8.0} misses {:>5.1}%  |{}",
            f.name,
            w,
            pct,
            bar(pct, 40)
        );
    }

    // The reorder the heat implies: measured-hot fields first, each
    // group packed the way cc-lint's hot-prefix layout packs (align
    // desc, size desc, declaration order) so padding stays minimal.
    let mut order: Vec<&cc_core::FieldDef> = schema.fields().iter().collect();
    order.sort_by(|a, b| {
        (heat(&b.name) > 0.0)
            .cmp(&(heat(&a.name) > 0.0))
            .then(b.align.cmp(&a.align))
            .then(b.size.cmp(&a.size))
    });
    let names: Vec<&str> = order.iter().map(|f| f.name.as_str()).collect();
    println!(
        "  suggested reorder (hot prefix first): {}",
        names.join(", ")
    );

    let spec = cc_lint::HotSpec::from_entries(
        weights
            .iter()
            .map(|(name, w)| (format!("FatNode.{name}"), *w)),
    );

    // Round trip: re-parse the exact bytes `.fieldhot.json` will hold
    // and hand the *parsed* spec to the analyzer — the measured heat
    // must survive its own serialization to drive `cc-lint --hot`.
    let parsed = cc_lint::HotSpec::parse_json(&spec.to_json())
        .expect("fieldhot spec round-trips through its own JSON");
    let report = cc_lint::analyze_sources(
        &[(
            String::from("fat-node.model.rs"),
            String::from(FAT_MODEL_SRC),
        )],
        &parsed,
        &cc_lint::LintConfig::default(),
    );
    println!("\ncc-lint --hot over the fat-node model (measured heat, round-tripped):");
    if report.findings.is_empty() {
        println!("  clean: no findings");
    }
    for f in &report.findings {
        let weight = f
            .weight
            .map_or(String::from("unmeasured"), |w| format!("{w:.0} misses"));
        println!("  [{}] ({weight}) {}::{}", f.rule.id(), f.file, f.strukt);
        println!("      {}", f.suggestion);
    }
    spec
}

/// Tiny arg helper: next arg parsed, or the default.
trait AndThenParse {
    fn and_then_parse(&mut self, default: u64) -> u64;
}

impl<I: Iterator<Item = String>> AndThenParse for I {
    fn and_then_parse(&mut self, default: u64) -> u64 {
        self.next().and_then(|s| s.parse().ok()).unwrap_or(default)
    }
}
