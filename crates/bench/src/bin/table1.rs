//! Table 1 — simulation parameters, printed from the live configuration
//! so the table can never drift from what the simulator actually runs.

use cc_bench::header;
use cc_sim::{MachineConfig, PipelineConfig};

fn main() {
    let m = MachineConfig::table1();
    let p = PipelineConfig::table1();
    header(
        "Table 1: simulation parameters (Olden runs)",
        "paper values in parentheses where the model simplifies",
    );
    let rows: Vec<(&str, String)> = vec![
        ("Issue width", format!("{} (4)", p.issue_width)),
        (
            "Functional units",
            "abstracted into issue width (2 Int, 2 FP, 2 Addr, 1 Branch)".into(),
        ),
        ("Reorder buffer size", format!("{} (64)", p.rob_size)),
        (
            "Branch prediction",
            format!(
                "{}% mispredict, {}-cycle refill (2-bit counters, 512 entries)",
                p.mispredict_rate * 100.0,
                p.mispredict_penalty
            ),
        ),
        (
            "L1 data cache",
            format!("{} write-through ({:?})", m.l1, m.l1_policy),
        ),
        ("Write buffer", format!("{} entries (8)", p.write_buffer)),
        (
            "L2 cache",
            format!("{} write-back ({:?})", m.l2, m.l2_policy),
        ),
        (
            "Cache line size",
            format!("{} bytes (128)", m.l2.block_bytes()),
        ),
        ("L1 hit", format!("{} cycle (1)", m.latency.l1_hit)),
        (
            "L1 miss (to L2)",
            format!("{} cycles total (9)", m.latency.l1_hit + m.latency.l1_miss),
        ),
        ("L2 miss", format!("{} cycles (60)", m.latency.l2_miss)),
        ("MSHRs (L1, L2)", format!("{0}, {0} (8, 8)", p.mshrs)),
        (
            "TLB",
            format!(
                "{} entries, {}-cycle software miss (not in RSIM's table)",
                m.tlb_entries, m.latency.tlb_miss
            ),
        ),
    ];
    for (k, v) in rows {
        println!("  {k:<24} {v}");
    }

    let e = MachineConfig::ultrasparc_e5000();
    header(
        "Microbenchmark / macrobenchmark machine (Section 4.1)",
        "Sun Ultraserver E5000",
    );
    println!("  {:<24} {}", "L1 data cache", e.l1);
    println!("  {:<24} {}", "L2 cache", e.l2);
    println!(
        "  {:<24} t_h={} t_m,L1={} t_m,L2={}",
        "latencies", e.latency.l1_hit, e.latency.l1_miss, e.latency.l2_miss
    );
    println!(
        "  {:<24} {} MHz, {} B pages",
        "clock / pages", e.clock_mhz, e.page_bytes
    );
    cc_bench::obs::write_obs_out();
}
