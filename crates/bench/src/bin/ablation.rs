//! Ablation sweeps for the design choices DESIGN.md calls out:
//!
//! 1. **coloring hot fraction** — how much of the cache to reserve for the
//!    structure's top (the paper's `Color_const`; it uses 1/2);
//! 2. **cluster kind** — subtree packing vs depth-first chains, per
//!    traversal pattern (the Section 2.1 caveat);
//! 3. **ccmalloc strategy** — closest / new-block / first-fit across the
//!    churn-heavy benchmark (health).
//!
//! All numbers are simulated cycles on the paper's machines. Each ablation
//! is a grid of independent cells run through the [`Sweep`] harness —
//! every cell builds its own structures and seeds its own RNG, so the
//! tables are byte-identical however many threads compute them.

use cc_bench::header;
use cc_bench::replay::steady_cycles_per_search;
use cc_core::ccmorph::{CcMorphParams, ColorConfig};
use cc_core::cluster::{ClusterKind, Order};
use cc_heap::VirtualSpace;
use cc_olden::{health, treeadd, Scheme};
use cc_sim::MachineConfig;
use cc_sweep::{Sweep, TraceKey, TraceStore};
use cc_trees::bst::Bst;
use cc_trees::BST_NODE_BYTES;

/// Steady-state cycles per search through the set-sharded replayer (the
/// shared warm-up → reset → measure pattern). Each cell's trace is keyed
/// by its layout, so ablation reruns sharing a `CC_TRACE_CACHE` directory
/// skip trace generation entirely.
fn search_time(
    machine: &MachineConfig,
    tree: &Bst,
    n: u64,
    shards: usize,
    store: Option<&TraceStore>,
    key: TraceKey,
) -> f64 {
    steady_cycles_per_search(
        *machine,
        n,
        99,
        shards,
        store,
        key,
        30_000,
        100_000,
        |k, buf| {
            tree.search(k, buf, false);
        },
    )
}

fn main() {
    let machine = MachineConfig::ultrasparc_e5000();
    let n = (1u64 << 20) - 1;

    header(
        "Ablation 1: coloring hot fraction (C-tree, random searches)",
        "cycles per search on a 2^20-key tree; paper uses hot fraction 1/2",
    );
    // `None` is the unmorphed random baseline; `Some(frac)` morphs with
    // that hot fraction (0.0 meaning clustering only).
    let fracs: [Option<f64>; 6] = [
        None,
        Some(0.0),
        Some(0.125),
        Some(0.25),
        Some(0.5),
        Some(0.75),
    ];
    let disk_store = TraceStore::from_env();
    let store = disk_store.has_disk().then_some(&disk_store);
    let shards = Sweep::new().intra_cell_shards(fracs.len());
    let base_key = TraceKey::new("ablation-hotfrac").machine(&machine);
    let rows = Sweep::new().run(&fracs, |_, &frac| match frac {
        None => {
            let mut tree = Bst::build_complete(n);
            tree.layout_sequential(Order::Random { seed: 5 });
            let key = base_key.fold(u64::MAX);
            (
                "no morph (random)".to_string(),
                search_time(&machine, &tree, n, shards, store, key),
            )
        }
        Some(frac) => {
            let mut t = Bst::build_complete(n);
            let mut vs = VirtualSpace::new(machine.page_bytes);
            let params = CcMorphParams {
                color: (frac > 0.0).then_some(ColorConfig { hot_fraction: frac }),
                ..CcMorphParams::clustering_only(&machine, BST_NODE_BYTES)
            };
            t.morph(&mut vs, &params);
            let label = if frac == 0.0 {
                "cluster only".to_string()
            } else {
                format!("hot fraction {frac}")
            };
            let key = base_key.fold(frac.to_bits());
            (label, search_time(&machine, &t, n, shards, store, key))
        }
    });
    for (label, time) in &rows {
        println!("  {label:<18} {time:>14.1}");
    }

    header(
        "Ablation 2: cluster kind vs traversal (treeadd, Table 1 machine)",
        "total cycles, 64 K nodes, 4 depth-first summation passes",
    );
    let t1 = MachineConfig::table1();
    let kinds: [Option<(&str, ClusterKind)>; 3] = [
        Some(("subtree clusters", ClusterKind::SubtreeBfs)),
        Some(("depth-first chains", ClusterKind::DepthFirstChain)),
        None, // base: no morph
    ];
    let rows = Sweep::new().run(&kinds, |_, &cell| match cell {
        Some((label, kind)) => {
            // Reuse the treeadd runner but override the morph kind by
            // running the pieces manually.
            let mut pipe = Scheme::CcMorphCluster.pipeline(&t1);
            let mut alloc = Scheme::CcMorphCluster.allocator(&t1);
            let mut tree = cc_olden::treeadd::TreeAdd::build(65_536, &mut alloc, &mut pipe, false);
            let mut vs = VirtualSpace::new(t1.page_bytes);
            vs.skip_pages((1 << 33) / t1.page_bytes);
            let params = CcMorphParams {
                cache: t1.l2,
                page_bytes: t1.page_bytes,
                elem_bytes: cc_olden::treeadd::TREE_NODE_BYTES,
                color: None,
                cluster_kind: kind,
            };
            tree.morph(&mut vs, &params, &mut pipe);
            for _ in 0..4 {
                tree.sum(&mut pipe, false);
            }
            (label, pipe.finish().total())
        }
        None => {
            let base = treeadd::run_iters(Scheme::Base, 65_536, 4, &t1);
            ("base (no morph)", base.breakdown.total())
        }
    });
    for (label, cycles) in &rows {
        println!("  {label:<20} {cycles:>14}");
    }
    println!("  (subtree packing refetches blocks under a pure DFS sweep — Section 2.1's caveat)");

    header(
        "Ablation 3: ccmalloc strategy under churn (health, Table 1 machine)",
        "total cycles, level 3, 300 steps",
    );
    let schemes = [
        Scheme::Base,
        Scheme::CcMallocFirstFit,
        Scheme::CcMallocClosest,
        Scheme::CcMallocNewBlock,
    ];
    let rows = Sweep::new().run(&schemes, |_, &s| {
        let r = health::run(s, 3, 300, &t1);
        (s.label(), r.breakdown.total(), r.heap.footprint_bytes())
    });
    for (label, cycles, footprint) in &rows {
        println!(
            "  {label:<12} {cycles:>14} cycles  footprint {:>10}",
            cc_bench::human_bytes(*footprint)
        );
    }
    cc_bench::obs::write_obs_out();
}
