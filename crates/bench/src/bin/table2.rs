//! Table 2 — benchmark characteristics, measured by actually building
//! each Olden benchmark's structures at the paper's input sizes.

use cc_bench::{header, human_bytes};
use cc_olden::{health, mst, perimeter, treeadd, Scheme};
use cc_sim::MachineConfig;

fn main() {
    let machine = MachineConfig::table1();
    header(
        "Table 2: benchmark characteristics",
        "structures built at (scaled) paper inputs; memory = allocator footprint",
    );
    println!(
        "{:<11} {:<34} {:<22} {:>12}",
        "name", "description", "input", "memory"
    );

    eprintln!("building treeadd…");
    let ta = treeadd::run(Scheme::Base, 262_144, &machine);
    println!(
        "{:<11} {:<34} {:<22} {:>12}",
        "treeadd",
        "sums the values stored in a tree",
        "256 K nodes",
        human_bytes(ta.heap.footprint_bytes())
    );

    eprintln!("building health…");
    let he = health::run(Scheme::Base, 3, 500, &machine);
    println!(
        "{:<11} {:<34} {:<22} {:>12}",
        "health",
        "Columbian health-care simulation",
        "level 3, 500 steps",
        human_bytes(he.heap.footprint_bytes())
    );

    eprintln!("building mst…");
    let ms = mst::run(Scheme::Base, 512, 16, &machine);
    println!(
        "{:<11} {:<34} {:<22} {:>12}",
        "mst",
        "minimum spanning tree of a graph",
        "512 nodes",
        human_bytes(ms.heap.footprint_bytes())
    );

    eprintln!("building perimeter…");
    let pe = perimeter::run(Scheme::Base, 1024, &machine);
    println!(
        "{:<11} {:<34} {:<22} {:>12}",
        "perimeter",
        "perimeter of regions in images",
        "1K x 1K image (paper 4K)",
        human_bytes(pe.heap.footprint_bytes())
    );

    println!(
        "\npaper: treeadd 4 MB / health 828 KB (3000 steps) / mst 12 KB / perimeter 64 MB (4K image)"
    );
    cc_bench::obs::write_obs_out();
}
