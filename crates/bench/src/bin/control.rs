//! Section 4.4's control experiment: `ccmalloc` with every hint replaced
//! by a null pointer.
//!
//! "To confirm that this performance improvement is not merely an
//! artifact of our ccmalloc implementation, we ran a control experiment
//! where we replaced all ccmalloc parameters by null pointers. The
//! resulting programs performed 2%–6% worse than the base versions that
//! use the system malloc." — the allocator's extra bookkeeping costs a
//! little; the *placement* is what pays.

use cc_bench::header;
use cc_olden::{health, mst, perimeter, treeadd, RunResult, Scheme};
use cc_sim::MachineConfig;

fn main() {
    let machine = MachineConfig::table1();
    header(
        "Control experiment: ccmalloc with null hints vs system malloc",
        "paper: null-hint programs ran 2-6% WORSE than base",
    );
    println!(
        "{:<12} {:>14} {:>14} {:>10}",
        "benchmark", "base cycles", "null-hint", "delta"
    );

    let pairs: Vec<(&str, Box<dyn Fn(Scheme) -> RunResult>)> = vec![
        (
            "treeadd",
            Box::new(|s| treeadd::run_iters(s, 65_536, 4, &machine)),
        ),
        ("health", Box::new(|s| health::run(s, 3, 200, &machine))),
        ("mst", Box::new(|s| mst::run(s, 256, 16, &machine))),
        ("perimeter", Box::new(|s| perimeter::run(s, 512, &machine))),
    ];

    for (name, run) in pairs {
        eprintln!("  {name}…");
        let base = run(Scheme::Base);
        let null = run(Scheme::CcMallocNullHint);
        assert_eq!(base.checksum, null.checksum);
        let delta = 100.0 * (null.breakdown.total() as f64 - base.breakdown.total() as f64)
            / base.breakdown.total() as f64;
        println!(
            "{:<12} {:>14} {:>14} {:>+9.1}%",
            name,
            base.breakdown.total(),
            null.breakdown.total(),
            delta
        );
    }
    cc_bench::obs::write_obs_out();
}
