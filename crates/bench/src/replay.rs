//! Shared trace recording and sharded-replay plumbing for the figure
//! binaries.
//!
//! `fig5` and `cc-bench-engine` each record the same workload — random
//! searches over a complete BST in one of the paper's layouts — and the
//! two recording blocks had drifted apart during the checkpoint port.
//! This module is the single home for:
//!
//! * [`TreeSpec`] / [`build_bst`] — every fig5/engine layout recipe as
//!   data (randomize, then depth-first repack, then `ccmorph`),
//! * [`pack_chunks`] — folding a recorded [`TraceBuffer`] into coalesced
//!   [`TraceBuf`] chunks exactly the way `BatchSink` would,
//! * [`SearchReplay`] — the measurement loop itself: draw keys, record
//!   (or fetch from a [`TraceStore`]) a trace segment, and replay it
//!   through a persistent [`ShardedReplayer`].
//!
//! The segment protocol is warm-hit invariant: each segment's search keys
//! are drawn from the RNG *before* the store is consulted, so the RNG
//! stream — and therefore every later segment — is identical whether the
//! trace was generated or served from cache.

use cc_core::ccmorph::CcMorphParams;
use cc_core::cluster::Order;
use cc_core::rng::SplitMix64;
use cc_sim::event::{Event, TraceBuffer};
use cc_sim::{MachineConfig, ShardDegradation, ShardedReplayer, TraceBuf};
use cc_sweep::{TraceKey, TraceStore};
use cc_trees::bst::Bst;

/// A fig5/engine tree-layout recipe, applied in a fixed order: randomize
/// placement, then depth-first repack, then `ccmorph` clustering +
/// coloring. Every cell in Figure 5 and the engine benchmark is some
/// subset of those three steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeSpec {
    /// Scatter nodes uniformly at random with this seed first (fig5 uses
    /// this to destroy the build order before demonstrating a repack).
    pub randomize: Option<u64>,
    /// Then repack in depth-first sequential order.
    pub depth_first: bool,
    /// Then run `ccmorph` clustering + coloring — the transparent C-tree.
    pub morph: bool,
}

impl TreeSpec {
    /// Folds the recipe into a trace key: two recipes that build different
    /// layouts must never collide on a cached trace.
    pub fn fold_key(self, key: TraceKey) -> TraceKey {
        key.fold(self.randomize.map_or(u64::MAX, |s| s))
            .fold(u64::from(self.randomize.is_some()))
            .fold(u64::from(self.depth_first))
            .fold(u64::from(self.morph))
    }
}

/// Builds the complete BST with `n` keys and applies `spec`'s layout
/// steps in order.
pub fn build_bst(machine: &MachineConfig, n: u64, spec: TreeSpec) -> Bst {
    let mut t = Bst::build_complete(n);
    if let Some(seed) = spec.randomize {
        t.layout_sequential(Order::Random { seed });
    }
    if spec.depth_first {
        t.layout_sequential(Order::DepthFirst);
    }
    if spec.morph {
        let mut vs = cc_heap::VirtualSpace::new(machine.page_bytes);
        let params = CcMorphParams::clustering_and_coloring(machine, cc_trees::BST_NODE_BYTES);
        let _ = t.morph(&mut vs, &params);
    }
    t
}

/// Packs a recorded trace into coalesced fixed-capacity chunks: runs of
/// instruction/branch events fold into the preceding entry's tick count
/// (exactly what `BatchSink` does during replay, done once up front).
pub fn pack_chunks(trace: &TraceBuffer) -> Vec<TraceBuf> {
    let mut chunks = Vec::new();
    let mut cur = TraceBuf::with_capacity(4096);
    let mut run = 0u64;
    for &ev in trace.events() {
        match ev {
            Event::Inst(_) | Event::Branch(_) => run += 1,
            _ => {
                if run > 0 {
                    cur.push_ticks(run);
                    run = 0;
                }
                if cur.is_full() {
                    chunks.push(std::mem::replace(&mut cur, TraceBuf::with_capacity(4096)));
                }
                cur.push(ev);
            }
        }
    }
    if run > 0 {
        cur.push_ticks(run);
    }
    if !cur.is_empty() {
        chunks.push(cur);
    }
    chunks
}

/// Packs a recorded trace into fixed-capacity chunks with *every* event
/// preserved — instruction and branch entries included, so replaying the
/// chunks reproduces the scalar sink's instruction and branch totals,
/// not just its cache statistics. This is the packer [`SearchReplay`]
/// stores traces with; [`pack_chunks`] is the leaner tick-folded form the
/// engine benchmark times, which only guarantees cycle/statistic
/// equality.
pub fn pack_full(trace: &TraceBuffer) -> Vec<TraceBuf> {
    let mut chunks = Vec::new();
    let mut cur = TraceBuf::with_capacity(4096);
    for &ev in trace.events() {
        if cur.is_full() {
            chunks.push(std::mem::replace(&mut cur, TraceBuf::with_capacity(4096)));
        }
        cur.push(ev);
    }
    if !cur.is_empty() {
        chunks.push(cur);
    }
    chunks
}

/// Searches per recorded segment. Small enough that a segment's packed
/// buffers stay cache-friendly, large enough that per-segment overhead
/// (key draw, store lookup, split) is noise.
pub const SEG_CAP: u64 = 32_768;

/// The fig5 measurement loop as a persistent object: draws random search
/// keys with the figure's RNG, records (or fetches) the trace in
/// [`SEG_CAP`]-search segments, and replays each segment through a
/// [`ShardedReplayer`] whose cache/TLB state persists across segments and
/// measurement checkpoints.
///
/// Simulated results are bit-identical to driving a scalar
/// [`cc_sim::MemorySink`] search-by-search (the sharded differential
/// suite proves the engine equality; the key protocol in the module docs
/// gives stream equality), so figures built on this loop are unchanged by
/// shard count or by a warm trace store.
pub struct SearchReplay<'a> {
    machine: MachineConfig,
    replayer: ShardedReplayer,
    store: Option<&'a TraceStore>,
    key: TraceKey,
    rng: SplitMix64,
    n: u64,
    done: u64,
    epoch: u64,
}

impl<'a> SearchReplay<'a> {
    /// Creates a loop over a tree with `n` keys.
    ///
    /// `key` must already distinguish the workload (figure tag, layout —
    /// see [`TreeSpec::fold_key`]); the machine geometry, tree size, and
    /// RNG seed are folded in here. The shard count is deliberately *not*
    /// folded: traces are stored unsplit, so every shard count shares one
    /// cached trace.
    pub fn new(
        machine: MachineConfig,
        n: u64,
        seed: u64,
        shards: usize,
        store: Option<&'a TraceStore>,
        key: TraceKey,
    ) -> Self {
        SearchReplay {
            machine,
            replayer: ShardedReplayer::new(machine, shards),
            store,
            key: key.machine(&machine).fold(n).fold(seed),
            rng: SplitMix64::new(seed),
            n,
            done: 0,
            epoch: 0,
        }
    }

    /// Runs searches until `target` have been replayed since the last
    /// [`SearchReplay::reset_stats`] (or construction). `search` records
    /// one search for a key into the trace buffer — it is only invoked on
    /// store misses, so a warm store skips tree traversal entirely.
    ///
    /// Each segment (and each trace generation inside it) is recorded as
    /// a span on the process tracer, so a `CC_OBS_OUT` trace shows where
    /// replay epochs spend their wall-clock time. Spans never touch the
    /// simulated results.
    pub fn advance_to(&mut self, target: u64, mut search: impl FnMut(u64, &mut TraceBuffer)) {
        while self.done < target {
            let count = SEG_CAP.min(target - self.done);
            // Keys are drawn before the store lookup: the RNG stream must
            // not depend on whether the segment is cached.
            let keys: Vec<u64> = (0..count).map(|_| 2 * self.rng.below(self.n)).collect();
            let mut generate = || {
                crate::obs::span("generate", "store", 0, || {
                    let mut buf = TraceBuffer::new();
                    for &k in &keys {
                        search(k, &mut buf);
                    }
                    pack_full(&buf)
                })
            };
            // The segment key carries the epoch because `done` rewinds on
            // reset while the RNG does not; without it a post-reset
            // segment could collide with a pre-reset one recorded at a
            // different RNG position.
            let seg_key = self.key.fold(self.epoch).fold(self.done).fold(count);
            crate::obs::bump("replay.segments", 1);
            crate::obs::bump("replay.searches", count);
            let seg_name = format!("segment[epoch {} @ {}]", self.epoch, self.done);
            crate::obs::span(&seg_name, "replay", 0, || {
                // Store-backed segments split through the store's
                // [`cc_sim::SplitPool`]: after replay the per-shard lane
                // buffers go back to the pool, so a steady-state epoch
                // allocates no lane storage at all (the pool hands the
                // same capacity back on the next segment).
                match self.store {
                    Some(store) => {
                        let bufs = store.get_or_generate(seg_key, generate);
                        let pool = store.split_pool();
                        let split = self.replayer.split_pooled(&bufs, pool);
                        self.replayer.replay(&split);
                        pool.recycle(split);
                    }
                    None => {
                        let split = self.replayer.split(&generate());
                        self.replayer.replay(&split);
                    }
                }
            });
            self.done += count;
        }
    }

    /// Enables per-region miss attribution on every shard lane (see
    /// [`ShardedReplayer::enable_attribution`]). Replay forfeits its
    /// memoized fast paths — slower wall-clock, bit-identical results.
    pub fn enable_attribution(&mut self, map: std::sync::Arc<cc_obs::RegionMap>) {
        self.replayer.enable_attribution(map);
    }

    /// The merged attribution profile across all lanes, if enabled.
    pub fn attribution(&self) -> Option<cc_obs::MissProfile> {
        self.replayer.attribution()
    }

    /// Searches replayed since the last reset.
    pub fn done(&self) -> u64 {
        self.done
    }

    /// Average simulated microseconds per search since the last reset,
    /// by the Section 5.1 formula fig5 uses: memory cycles plus one cycle
    /// per four instructions, over the machine clock.
    pub fn avg_us_per_search(&self) -> f64 {
        let cycles = self.replayer.memory_cycles() as f64 + self.replayer.insts() as f64 / 4.0;
        cycles / self.done as f64 / self.machine.cycles_per_us()
    }

    /// Clears measurement counters (cache/TLB contents persist) and
    /// rewinds the search counter, separating warm-up from steady state.
    pub fn reset_stats(&mut self) {
        self.replayer.reset_stats();
        self.done = 0;
        self.epoch += 1;
    }

    /// The underlying replayer, for direct statistics access.
    pub fn replayer(&self) -> &ShardedReplayer {
        &self.replayer
    }

    /// Degradation counters accumulated by the shard workers.
    pub fn degradation(&self) -> ShardDegradation {
        self.replayer.degradation()
    }
}

/// The warm-up/steady-state pattern `ablation` and `fig10` share: run
/// `warmup` searches, reset statistics (cache and TLB contents persist),
/// run `measure` more, and return average simulated cycles per measured
/// search by the Section 5.1 formula (memory cycles plus one cycle per
/// four instructions).
#[allow(clippy::too_many_arguments)]
pub fn steady_cycles_per_search<F>(
    machine: MachineConfig,
    n: u64,
    seed: u64,
    shards: usize,
    store: Option<&TraceStore>,
    key: TraceKey,
    warmup: u64,
    measure: u64,
    mut search: F,
) -> f64
where
    F: FnMut(u64, &mut TraceBuffer),
{
    let mut replay = SearchReplay::new(machine, n, seed, shards, store, key);
    replay.advance_to(warmup, &mut search);
    replay.reset_stats();
    replay.advance_to(measure, &mut search);
    assert_eq!(
        replay.degradation(),
        ShardDegradation::default(),
        "degraded replay in a steady-state measurement"
    );
    let r = replay.replayer();
    (r.memory_cycles() as f64 + r.insts() as f64 / 4.0) / measure as f64
}

impl std::fmt::Debug for SearchReplay<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchReplay")
            .field("n", &self.n)
            .field("done", &self.done)
            .field("epoch", &self.epoch)
            .field("shards", &self.replayer.shards())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_sim::MemorySink;

    /// The scalar reference fig5 loop: one search at a time through a
    /// [`MemorySink`].
    fn scalar_avg(machine: MachineConfig, n: u64, seed: u64, searches: u64) -> (f64, u64) {
        let spec = TreeSpec {
            randomize: Some(0xA11),
            depth_first: false,
            morph: false,
        };
        let t = build_bst(&machine, n, spec);
        let mut sink = MemorySink::new(machine);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..searches {
            let key = 2 * rng.below(n);
            t.search(key, &mut sink, false);
        }
        let cycles = sink.memory_cycles() as f64 + sink.insts() as f64 / 4.0;
        (
            cycles / searches as f64 / machine.cycles_per_us(),
            sink.system().l1_stats().misses(),
        )
    }

    fn replay_avg(
        machine: MachineConfig,
        n: u64,
        seed: u64,
        searches: u64,
        shards: usize,
        store: Option<&TraceStore>,
    ) -> (f64, u64) {
        let spec = TreeSpec {
            randomize: Some(0xA11),
            depth_first: false,
            morph: false,
        };
        let t = build_bst(&machine, n, spec);
        let key = spec.fold_key(TraceKey::new("replay-test"));
        let mut replay = SearchReplay::new(machine, n, seed, shards, store, key);
        replay.advance_to(searches, |k, buf| {
            t.search(k, buf, false);
        });
        (
            replay.avg_us_per_search(),
            replay.replayer().l1_stats().misses(),
        )
    }

    #[test]
    fn search_replay_matches_the_scalar_loop() {
        let machine = MachineConfig::ultrasparc_e5000();
        let (n, seed, searches) = (1023, 0x51EE7, 700);
        let scalar = scalar_avg(machine, n, seed, searches);
        for shards in [1usize, 4] {
            let sharded = replay_avg(machine, n, seed, searches, shards, None);
            assert_eq!(sharded.0.to_bits(), scalar.0.to_bits(), "{shards} shards");
            assert_eq!(sharded.1, scalar.1, "{shards} shards L1 misses");
        }
    }

    #[test]
    fn warm_store_replays_are_identical_and_skip_generation() {
        let machine = MachineConfig::ultrasparc_e5000();
        let store = TraceStore::default();
        let cold = replay_avg(machine, 511, 7, 300, 2, Some(&store));
        let gens = store.counters().generations;
        assert!(gens > 0);
        let warm = replay_avg(machine, 511, 7, 300, 2, Some(&store));
        assert_eq!(warm.0.to_bits(), cold.0.to_bits());
        assert_eq!(warm.1, cold.1);
        assert_eq!(store.counters().generations, gens, "warm run regenerated");
        assert!(store.counters().hits > 0);
    }

    #[test]
    fn reset_separates_epochs_in_the_store_key() {
        let machine = MachineConfig::ultrasparc_e5000();
        let store = TraceStore::default();
        let spec = TreeSpec {
            randomize: None,
            depth_first: true,
            morph: false,
        };
        let t = build_bst(&machine, 255, spec);
        let key = spec.fold_key(TraceKey::new("epoch-test"));
        let mut replay = SearchReplay::new(machine, 255, 3, 1, Some(&store), key);
        replay.advance_to(100, |k, buf| {
            t.search(k, buf, false);
        });
        replay.reset_stats();
        assert_eq!(replay.done(), 0);
        // Same (done, count) coordinates as the warm-up segment, but the
        // RNG has advanced: the epoch fold must force a fresh generation
        // rather than serving the warm-up trace.
        replay.advance_to(100, |k, buf| {
            t.search(k, buf, false);
        });
        assert_eq!(store.counters().generations, 2);
        assert_eq!(store.counters().hits, 0);
    }

    #[test]
    fn steady_state_helper_matches_the_scalar_pattern() {
        let machine = MachineConfig::ultrasparc_e5000();
        let (n, seed, warmup, measure) = (511u64, 99u64, 400u64, 600u64);
        let spec = TreeSpec {
            randomize: Some(5),
            depth_first: false,
            morph: false,
        };
        let t = build_bst(&machine, n, spec);

        // Scalar reference: warm up, reset stats (cache contents persist),
        // measure with the same continuing RNG stream.
        let mut sink = MemorySink::new(machine);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..warmup {
            t.search(2 * rng.below(n), &mut sink, false);
        }
        sink.reset_stats();
        for _ in 0..measure {
            t.search(2 * rng.below(n), &mut sink, false);
        }
        let scalar = (sink.memory_cycles() as f64 + sink.insts() as f64 / 4.0) / measure as f64;

        for shards in [1usize, 3] {
            let key = spec.fold_key(TraceKey::new("steady-test"));
            let sharded = steady_cycles_per_search(
                machine,
                n,
                seed,
                shards,
                None,
                key,
                warmup,
                measure,
                |k, buf| {
                    t.search(k, buf, false);
                },
            );
            assert_eq!(sharded.to_bits(), scalar.to_bits(), "{shards} shards");
        }
    }

    #[test]
    fn tree_specs_fold_distinct_keys() {
        let specs = [
            TreeSpec {
                randomize: None,
                depth_first: false,
                morph: false,
            },
            TreeSpec {
                randomize: Some(0),
                depth_first: false,
                morph: false,
            },
            TreeSpec {
                randomize: Some(0xA11),
                depth_first: false,
                morph: false,
            },
            TreeSpec {
                randomize: Some(0xA11),
                depth_first: true,
                morph: false,
            },
            TreeSpec {
                randomize: Some(0xA11),
                depth_first: true,
                morph: true,
            },
        ];
        let base = TraceKey::new("fig5");
        let keys: Vec<u64> = specs.iter().map(|s| s.fold_key(base).value()).collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "specs {i} and {j} collide");
            }
        }
    }
}
