//! The field-layout sweep: AoS baseline vs the three `cc-core` field
//! transforms (reorder, hot/cold split, SoA) on the fat-node tree, in
//! the style of the paper's Figure 5 comparison.
//!
//! Two workloads bracket the design space:
//!
//! * **search** — random BST searches over [`FatBst`]: a pointer chase
//!   that reads 12 hot bytes out of every 64-byte node it visits. The
//!   hot/cold split packs those bytes four nodes to a block and lets
//!   `ccmorph` cluster the halves, so this is where splitting pays.
//! * **scan** — an arena-order sweep of every node's key: the array-ish
//!   access pattern where structure-of-arrays packs eight keys into the
//!   block that held one — the `field_layout_speedup_vs_aos` headline.
//!
//! Both workloads are *simulated* microseconds (the Section 5.1 cost
//! formula), so every number here is deterministic and the sweep can be
//! gated in CI.
//!
//! The module also owns [`field_map_for`], the bridge from a
//! [`FieldLayout`] to the observability layer's [`FieldMap`] — the piece
//! that turns "the L1 missed at 0x10a34" into "the `key` field missed".

use cc_core::rng::SplitMix64;
use cc_core::{
    try_reorder_fields, try_soa_convert, try_split_hot_cold, FieldLayout, FieldLayoutParams,
    FieldTransform,
};
use cc_heap::VirtualSpace;
use cc_obs::{FieldMap, Level, RegionMap};
use cc_sim::batch::BatchSink;
use cc_sim::event::EventSink;
use cc_sim::{Event, MachineConfig};
use cc_trees::fat::{fat_hot_spec, fat_schema, FatBst, FAT_NODE_BYTES};
use std::sync::Arc;

/// One cell of the field-layout sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldCase {
    /// Declaration-order array-of-structs — the untransformed baseline.
    Aos,
    /// `cc-core` hot-prefix reorder (hot fields packed first).
    Reorder,
    /// Hot/cold split: dense `ccmorph`ed hot halves, cold arena aside.
    HotCold,
    /// Structure-of-arrays conversion of the node pool.
    Soa,
}

impl FieldCase {
    /// All cells, AoS first (every ratio is reported against it).
    pub const ALL: [FieldCase; 4] = [
        FieldCase::Aos,
        FieldCase::Reorder,
        FieldCase::HotCold,
        FieldCase::Soa,
    ];

    /// Stable identifier used in JSON and trace keys.
    pub fn name(self) -> &'static str {
        match self {
            FieldCase::Aos => "aos",
            FieldCase::Reorder => "reorder",
            FieldCase::HotCold => "hot_cold",
            FieldCase::Soa => "soa",
        }
    }
}

/// Builds the fat tree under `case`'s layout, returning the tree and the
/// transform's [`FieldLayout`] (`None` for the AoS baseline, whose
/// geometry is the declaration order itself).
pub fn build_fat_case(
    machine: &MachineConfig,
    n: u64,
    case: FieldCase,
) -> (FatBst, Option<FieldLayout>) {
    let mut t = FatBst::build_complete(n);
    let layout = match case {
        FieldCase::Aos => None,
        transformed => {
            let params = FieldLayoutParams::new(machine);
            let mut vs = VirtualSpace::new(machine.page_bytes);
            let (schema, hot) = (fat_schema(), fat_hot_spec());
            let layout = match transformed {
                FieldCase::Reorder => try_reorder_fields(&t, &mut vs, &params, &schema, &hot),
                FieldCase::HotCold => try_split_hot_cold(&t, &mut vs, &params, &schema, &hot),
                FieldCase::Soa => try_soa_convert(&mut vs, &params, &schema, &hot, t.len()),
                FieldCase::Aos => unreachable!(),
            }
            .expect("fat schema and hot spec are well-formed");
            t.apply(&layout);
            Some(layout)
        }
    };
    (t, layout)
}

/// Builds the field-resolution map for `layout` over nodes `0..nodes`,
/// covering every field of every laid-out node (hot *and* cold halves,
/// every SoA array).
pub fn field_map_for(layout: &FieldLayout, nodes: usize) -> FieldMap {
    let mut map = FieldMap::new();
    match layout.transform() {
        FieldTransform::Soa => {
            let len = layout.len() as u64;
            for (name, base, elem) in layout.arrays() {
                let field = map.field_id(name);
                let table = map.add_table(&[(field, 0, elem)]);
                if len > 0 {
                    map.add_extent(base, base + len * elem, elem, table);
                }
            }
        }
        FieldTransform::Reorder => {
            // Every field lives at `object base + offset`; recover the
            // offsets from any laid-out node (hot_spans() would only
            // list the hot prefix).
            let Some(probe) = (0..nodes).find(|&n| layout.try_node_addr(n).is_some()) else {
                return map;
            };
            let base = layout.node_addr(probe);
            let spans: Vec<(cc_obs::FieldId, u64, u64)> = (0..layout.field_count())
                .map(|f| {
                    let id = map.field_id(layout.field_name(f));
                    (id, layout.field_addr(probe, f) - base, layout.field_size(f))
                })
                .collect();
            let table = map.add_table(&spans);
            add_strided_runs(
                &mut map,
                table,
                (0..nodes).filter_map(|n| layout.try_node_addr(n)),
                layout.hot_stride(),
            );
        }
        FieldTransform::HotCold => {
            let hot_spans: Vec<(cc_obs::FieldId, u64, u64)> = layout
                .hot_spans()
                .iter()
                .map(|&(name, off, size)| (map.field_id(name), off, size))
                .collect();
            let hot_table = map.add_table(&hot_spans);
            add_strided_runs(
                &mut map,
                hot_table,
                (0..nodes).filter_map(|n| layout.try_node_addr(n)),
                layout.hot_stride(),
            );
            // No direct cold-base accessor exists; recover each node's
            // cold base from any cold field's address minus its span
            // offset.
            let cold_spans = layout.cold_spans();
            let (anchor_name, anchor_off, _) = cold_spans[0];
            let anchor = layout
                .field_index(anchor_name)
                .expect("cold span names a schema field");
            let cold_table = {
                let spans: Vec<(cc_obs::FieldId, u64, u64)> = cold_spans
                    .iter()
                    .map(|&(name, off, size)| (map.field_id(name), off, size))
                    .collect();
                map.add_table(&spans)
            };
            add_strided_runs(
                &mut map,
                cold_table,
                (0..nodes).filter_map(|n| layout.try_field_addr(n, anchor).map(|a| a - anchor_off)),
                layout.cold_stride(),
            );
        }
    }
    map
}

/// Field map for the declaration-order AoS pool at `base` with `n`
/// 64-byte fat nodes — the baseline the transforms are compared against.
pub fn field_map_for_aos(base: u64, n: u64) -> FieldMap {
    let mut map = FieldMap::new();
    let mut spans = Vec::new();
    let mut off = 0u64;
    for f in fat_schema().fields() {
        let o = off.next_multiple_of(f.align);
        spans.push((map.field_id(&f.name), o, f.size));
        off = o + f.size;
    }
    let table = map.add_table(&spans);
    if n > 0 {
        map.add_extent(base, base + n * FAT_NODE_BYTES, FAT_NODE_BYTES, table);
    }
    map
}

/// Coalesces an address stream of fixed-stride objects into maximal
/// dense runs and registers each as one strided extent.
fn add_strided_runs(map: &mut FieldMap, table: u32, addrs: impl Iterator<Item = u64>, stride: u64) {
    let mut sorted: Vec<u64> = addrs.collect();
    sorted.sort_unstable();
    sorted.dedup();
    let mut run: Option<(u64, u64)> = None;
    for a in sorted {
        run = Some(match run {
            Some((start, end)) if a == end => (start, end + stride),
            Some((start, end)) => {
                map.add_extent(start, end, stride, table);
                (a, a + stride)
            }
            None => (a, a + stride),
        });
    }
    if let Some((start, end)) = run {
        map.add_extent(start, end, stride, table);
    }
}

/// One measured sweep cell.
#[derive(Clone, Debug)]
pub struct FieldCaseResult {
    /// Which layout.
    pub case: FieldCase,
    /// Simulated µs per random search (steady state).
    pub search_us: f64,
    /// Simulated µs per scanned element (steady state).
    pub scan_us: f64,
    /// L1 miss rate of the measured search phase, in percent.
    pub search_l1_miss_pct: f64,
    /// Stride of the hot placement: 64 for AoS and the hot-prefix
    /// reorder, 16 for the split's hot half, the 64-byte element total
    /// for SoA.
    pub hot_stride: u64,
    /// Per-field L1 miss shares of an attributed search phase,
    /// `(field, share)` hottest first — measured through the
    /// field-attribution funnel, not inferred from the schema.
    pub field_misses: Vec<(String, f64)>,
}

/// The whole sweep: every cell plus the workload coordinates.
#[derive(Clone, Debug)]
pub struct FieldSweep {
    /// Per-case results, in [`FieldCase::ALL`] order.
    pub results: Vec<FieldCaseResult>,
    /// Keys in the tree.
    pub n: u64,
    /// Measured searches per cell (after an equal warm-up).
    pub searches: u64,
    /// Full-pool scans per cell.
    pub scans: u64,
}

impl FieldSweep {
    /// The result for `case`.
    pub fn get(&self, case: FieldCase) -> &FieldCaseResult {
        self.results
            .iter()
            .find(|r| r.case == case)
            .expect("sweep ran every case")
    }

    /// Simulated search speedup of `case` over the AoS baseline.
    pub fn search_speedup(&self, case: FieldCase) -> f64 {
        self.get(FieldCase::Aos).search_us / self.get(case).search_us
    }

    /// Simulated scan speedup of `case` over the AoS baseline.
    pub fn scan_speedup(&self, case: FieldCase) -> f64 {
        self.get(FieldCase::Aos).scan_us / self.get(case).scan_us
    }

    /// The artifact headline: SoA over AoS on the array-ish scan — the
    /// workload/transform pair the paper prescribes for array-like
    /// pools, gated `> 1.0` in CI.
    pub fn headline_speedup(&self) -> f64 {
        self.scan_speedup(FieldCase::Soa)
    }
}

/// Measures one case: a search phase then a scan phase, both through a
/// [`BatchSink`] (bit-identical to the scalar reference; the engine
/// suite proves it), warm-up excluded via `reset_stats`. A third,
/// attributed pass over the same search stream produces the per-field
/// miss shares; it is kept off the timing sink so the timing phase
/// stays on the fast path (attribution is bit-identical anyway — the
/// differential test below pins that).
pub fn run_field_case(
    machine: &MachineConfig,
    n: u64,
    case: FieldCase,
    warmup: u64,
    searches: u64,
    scans: u64,
) -> FieldCaseResult {
    let (t, layout) = build_fat_case(machine, n, case);

    // Search phase.
    let mut sink = BatchSink::new(*machine);
    let mut rng = SplitMix64::new(0xF1E1D);
    for _ in 0..warmup {
        t.search(2 * rng.below(n), &mut sink);
    }
    sink.flush();
    sink.reset_stats();
    for _ in 0..searches {
        t.search(2 * rng.below(n), &mut sink);
    }
    sink.flush();
    let search_cycles = sink.memory_cycles() as f64 + sink.insts() as f64 / 4.0;
    let search_us = search_cycles / searches as f64 / machine.cycles_per_us();
    let search_l1_miss_pct = 100.0 * sink.system().l1_stats().miss_rate();

    // Attributed pass: same stream, field funnel on.
    let fmap = Arc::new(match &layout {
        Some(l) => field_map_for(l, t.len()),
        None => field_map_for_aos(aos_base(&t), n),
    });
    let mut attrib_sink = BatchSink::new(*machine);
    let mut regions = RegionMap::new();
    regions.register("fat", 0, u64::MAX);
    attrib_sink.enable_attribution(Arc::new(regions));
    attrib_sink.enable_field_attribution(Arc::clone(&fmap));
    let mut rng = SplitMix64::new(0xF1E1D);
    for _ in 0..warmup + searches {
        t.search(2 * rng.below(n), &mut attrib_sink);
    }
    attrib_sink.flush();
    // `field_weights` reports raw miss counts; normalize to shares and
    // order hottest first.
    let mut field_misses: Vec<(String, f64)> = attrib_sink
        .attribution()
        .map(|p| {
            let raw = p.field_weights(Level::L1);
            let total: f64 = raw.iter().map(|(_, w)| w).sum();
            raw.into_iter()
                .map(|(name, w)| (name.to_string(), if total > 0.0 { w / total } else { 0.0 }))
                .collect()
        })
        .unwrap_or_default();
    field_misses.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    // Scan phase.
    let mut sink = BatchSink::new(*machine);
    t.scan_keys(0, &mut sink); // warm
    sink.flush();
    sink.reset_stats();
    for _ in 0..scans {
        t.scan_keys(0, &mut sink);
    }
    sink.flush();
    let scan_cycles = sink.memory_cycles() as f64 + sink.insts() as f64 / 4.0;
    let scan_us = scan_cycles / (scans * n) as f64 / machine.cycles_per_us();

    FieldCaseResult {
        case,
        search_us,
        scan_us,
        search_l1_miss_pct,
        hot_stride: layout.as_ref().map_or(FAT_NODE_BYTES, |l| l.hot_stride()),
        field_misses,
    }
}

/// One attributed leg of a field-transform comparison — the unit
/// `cc-serve`'s `morph` op runs twice (AoS baseline, then the requested
/// transform) when a request carries `transform`.
// The 24-byte Vec leads so the scalar tail packs into one line (SPAN-01,
// cc-lint's own suggestion for this struct).
#[derive(Clone, Debug)]
pub struct FieldLegStats {
    /// Per-field `(name, l1_misses, l2_misses)` in schema declaration
    /// order — every field present, cold fields report zero.
    pub fields: Vec<(String, u64, u64)>,
    /// Simulated µs per search over the whole leg.
    pub avg_us_per_search: f64,
    /// L1 demand hits.
    pub l1_hits: u64,
    /// L1 demand misses.
    pub l1_misses: u64,
    /// L2 demand hits.
    pub l2_hits: u64,
    /// L2 demand misses.
    pub l2_misses: u64,
    /// Stride of the hot placement (see [`FieldCaseResult::hot_stride`]).
    pub hot_stride: u64,
}

/// Runs one field-attributed search leg: `searches` random searches on
/// the `case` layout of an `n`-key fat tree, attribution on throughout
/// (bit-identical to a plain run; the differential test pins it).
/// `check` is polled between ~4k-search chunks so a server deadline can
/// cancel cooperatively; its error aborts the leg.
pub fn run_field_leg<E>(
    machine: &MachineConfig,
    n: u64,
    case: FieldCase,
    searches: u64,
    seed: u64,
    mut check: impl FnMut() -> Result<(), E>,
) -> Result<FieldLegStats, E> {
    let (t, layout) = build_fat_case(machine, n, case);
    let fmap = Arc::new(match &layout {
        Some(l) => field_map_for(l, t.len()),
        None => field_map_for_aos(aos_base(&t), n),
    });
    let mut sink = BatchSink::new(*machine);
    let mut regions = RegionMap::new();
    regions.register("fat", 0, u64::MAX);
    sink.enable_attribution(Arc::new(regions));
    sink.enable_field_attribution(Arc::clone(&fmap));
    let mut rng = SplitMix64::new(seed);
    let mut done = 0u64;
    while done < searches {
        check()?;
        let step = (searches - done).min(4096);
        for _ in 0..step {
            t.search(2 * rng.below(n), &mut sink);
        }
        done += step;
    }
    sink.flush();
    check()?;

    let cycles = sink.memory_cycles() as f64 + sink.insts() as f64 / 4.0;
    let p = sink.attribution().expect("field attribution was enabled");
    let fields = fat_schema()
        .fields()
        .iter()
        .map(|f| {
            let misses = |level: Level| {
                p.field_weights(level)
                    .iter()
                    .find(|(name, _)| *name == f.name.as_str())
                    .map_or(0u64, |(_, w)| *w as u64)
            };
            (f.name.clone(), misses(Level::L1), misses(Level::L2))
        })
        .collect();
    let sys = sink.system();
    Ok(FieldLegStats {
        avg_us_per_search: cycles / searches as f64 / machine.cycles_per_us(),
        l1_hits: sys.l1_stats().hits(),
        l1_misses: sys.l1_stats().misses(),
        l2_hits: sys.l2_stats().hits(),
        l2_misses: sys.l2_stats().misses(),
        hot_stride: layout.as_ref().map_or(FAT_NODE_BYTES, |l| l.hot_stride()),
        fields,
    })
}

/// The AoS pool base (node 0's `key` address — field offsets start
/// at 0), observed from the first load a scan emits.
pub fn aos_base(t: &FatBst) -> u64 {
    let mut probe = ProbeSink::default();
    t.scan_keys(0, &mut probe);
    probe.first.expect("nonempty tree")
}

/// Captures the first load address a traversal emits.
#[derive(Default)]
struct ProbeSink {
    first: Option<u64>,
}

impl EventSink for ProbeSink {
    fn event(&mut self, ev: Event) {
        if let Event::Load { addr, .. } = ev {
            self.first.get_or_insert(addr);
        }
    }
}

/// Runs the full sweep. `quick` shrinks the tree and both phases for CI
/// smoke; the ratios survive because they are geometry, not scale.
pub fn run_field_sweep(machine: &MachineConfig, quick: bool) -> FieldSweep {
    let (bits, warmup, searches, scans) = if quick {
        (13u32, 2_000u64, 8_000u64, 8u64)
    } else {
        (17, 10_000, 40_000, 16)
    };
    let n = (1u64 << bits) - 1;
    let results = FieldCase::ALL
        .iter()
        .map(|&case| run_field_case(machine, n, case, warmup, searches, scans))
        .collect();
    FieldSweep {
        results,
        n,
        searches,
        scans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_sim::MemorySink;

    #[test]
    fn field_maps_resolve_every_field_address() {
        let machine = MachineConfig::ultrasparc_e5000();
        for case in FieldCase::ALL {
            let (t, layout) = build_fat_case(&machine, 255, case);
            match &layout {
                Some(l) => {
                    let fmap = field_map_for(l, t.len());
                    for node in 0..t.len() {
                        for f in 0..l.field_count() {
                            let addr = l.field_addr(node, f);
                            let got = fmap.resolve(addr).map(|id| fmap.name(id));
                            assert_eq!(
                                got,
                                Some(l.field_name(f)),
                                "{} node {node} field {}",
                                case.name(),
                                l.field_name(f)
                            );
                        }
                    }
                }
                None => {
                    let base = aos_base(&t);
                    let fmap = field_map_for_aos(base, 255);
                    // Declaration-order offsets within the 64-byte record.
                    let offs = [
                        ("key", 0u64),
                        ("meta", 8),
                        ("left", 24),
                        ("right", 28),
                        ("payload", 32),
                    ];
                    for (name, off) in offs {
                        let got = fmap
                            .resolve(base + 3 * FAT_NODE_BYTES + off)
                            .map(|id| fmap.name(id).to_string());
                        assert_eq!(got.as_deref(), Some(name), "aos field {name}");
                    }
                    assert_eq!(
                        fmap.resolve(base + 255 * FAT_NODE_BYTES),
                        None,
                        "past the pool"
                    );
                }
            }
        }
    }

    #[test]
    fn attribution_leaves_simulation_bit_identical() {
        let machine = MachineConfig::ultrasparc_e5000();
        let (t, layout) = build_fat_case(&machine, 511, FieldCase::HotCold);
        let fmap = Arc::new(field_map_for(
            layout.as_ref().expect("transformed"),
            t.len(),
        ));

        let run = |attrib: bool| {
            let mut sink = BatchSink::new(machine);
            if attrib {
                let mut regions = RegionMap::new();
                regions.register("fat", 0, u64::MAX);
                sink.enable_attribution(Arc::new(regions));
                sink.enable_field_attribution(Arc::clone(&fmap));
            }
            let mut rng = SplitMix64::new(77);
            for _ in 0..900 {
                t.search(2 * rng.below(511), &mut sink);
            }
            t.scan_keys(100, &mut sink);
            sink.flush();
            (
                sink.memory_cycles(),
                sink.insts(),
                sink.system().l1_stats(),
                sink.system().l2_stats(),
                sink.system().tlb_stats(),
            )
        };
        assert_eq!(run(false), run(true), "attribution changed the simulation");
    }

    #[test]
    fn attributed_search_charges_only_the_hot_fields() {
        let machine = MachineConfig::ultrasparc_e5000();
        let (t, layout) = build_fat_case(&machine, 4095, FieldCase::Aos);
        assert!(layout.is_none());
        let fmap = Arc::new(field_map_for_aos(aos_base(&t), 4095));
        let mut sink = MemorySink::new(machine);
        let mut regions = RegionMap::new();
        regions.register("fat", 0, u64::MAX);
        sink.enable_attribution(Arc::new(regions));
        sink.enable_field_attribution(Arc::clone(&fmap));
        let mut rng = SplitMix64::new(5);
        for _ in 0..2_000 {
            t.search(2 * rng.below(4095), &mut sink);
        }
        let p = sink.attribution().expect("enabled");
        let weights = p.field_weights(Level::L1);
        assert!(!weights.is_empty(), "search phase produced no field misses");
        // Searches only read key/left/right; the cold fields and the
        // unattributed bucket must both stay silent.
        for (name, _) in &weights {
            assert!(
                ["key", "left", "right"].contains(name),
                "cold field {name} charged by a hot-only traversal"
            );
        }
        assert_eq!(p.field_unattributed(Level::L1).accesses, 0);
        // Raw counts: the hot fields' misses account for every L1 miss.
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        assert_eq!(total, sink.system().l1_stats().misses() as f64);
    }

    #[test]
    fn quick_sweep_wins_where_the_paper_says() {
        let machine = MachineConfig::ultrasparc_e5000();
        let sweep = FieldSweep {
            // Small but past L1: the geometry argument (8 keys per
            // block vs 1) is scale-free.
            results: FieldCase::ALL
                .iter()
                .map(|&case| run_field_case(&machine, 2047, case, 500, 2_000, 4))
                .collect(),
            n: 2047,
            searches: 2_000,
            scans: 4,
        };
        assert!(
            sweep.headline_speedup() > 1.0,
            "SoA scan must beat AoS: {:.2}",
            sweep.headline_speedup()
        );
        assert!(
            sweep.search_speedup(FieldCase::HotCold) > 1.0,
            "hot/cold split must beat AoS on search: {:.2}",
            sweep.search_speedup(FieldCase::HotCold)
        );
        let aos = sweep.get(FieldCase::Aos);
        let split = sweep.get(FieldCase::HotCold);
        assert_eq!(aos.hot_stride, 64);
        assert_eq!(split.hot_stride, 16);
        assert!(!split.field_misses.is_empty());
        assert!(
            split.search_l1_miss_pct < aos.search_l1_miss_pct,
            "split {:.2}% vs aos {:.2}%",
            split.search_l1_miss_pct,
            aos.search_l1_miss_pct
        );
    }
}
