//! Process-wide observability surface for the figure binaries.
//!
//! The figure binaries are ordinary `main`s scattered across `src/bin`;
//! threading a [`MetricsRegistry`] through every call chain (checkpoint
//! plumbing, replay loops, audit hooks) would churn every signature for
//! what is fundamentally process-global state. Instead this module owns
//! one registry and one [`SpanTracer`] per process, and the binaries
//! call [`write_obs_out`] once before exiting.
//!
//! Nothing here ever touches stdout: the figure tables stay
//! byte-identical whether or not observability is consumed. Output goes
//! to the path named by `CC_OBS_OUT` (metrics, and `<path>.trace.json`
//! for spans) and failures to write degrade to a stderr warning — the
//! never-panic contract extends to the observer.

use cc_obs::{MetricsRegistry, SpanTracer};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn registry() -> &'static Mutex<MetricsRegistry> {
    static REGISTRY: OnceLock<Mutex<MetricsRegistry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(MetricsRegistry::new()))
}

fn tracer_cell() -> &'static Mutex<SpanTracer> {
    static TRACER: OnceLock<Mutex<SpanTracer>> = OnceLock::new();
    TRACER.get_or_init(|| Mutex::new(SpanTracer::new()))
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicked cell thread must not take the whole figure's metrics
    // with it; the counters are plain integers, always consistent.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Adds `delta` to the process-wide metric `key`.
pub fn bump(key: &str, delta: u64) {
    lock(registry()).bump(key, delta);
}

/// Sets the process-wide metric `key` to `value`.
pub fn set(key: &str, value: u64) {
    lock(registry()).set(key, value);
}

/// A copy of the process-wide registry as it stands.
pub fn snapshot() -> MetricsRegistry {
    lock(registry()).clone()
}

/// Folds an already-aggregated registry (e.g. one built from heap or
/// store counters at the end of a run) into the process-wide one.
pub fn absorb(other: &MetricsRegistry) {
    lock(registry()).merge(other);
}

/// Runs `f` with the process-wide span tracer locked.
pub fn with_tracer<T>(f: impl FnOnce(&mut SpanTracer) -> T) -> T {
    f(&mut lock(tracer_cell()))
}

/// Times `f` as one span on the process-wide tracer.
pub fn span<T>(name: &str, cat: &'static str, tid: u64, f: impl FnOnce() -> T) -> T {
    let open = lock(tracer_cell()).start(name, cat, tid);
    let out = f();
    lock(tracer_cell()).finish(open);
    out
}

/// Writes the metrics snapshot to the path named by `CC_OBS_OUT` (and
/// the span trace to `<path>.trace.json`), if the variable is set.
/// Stdout is never touched; write failures warn on stderr and return —
/// observability must not be able to fail a figure.
pub fn write_obs_out() {
    let Some(path) = std::env::var_os("CC_OBS_OUT") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let path = std::path::PathBuf::from(path);
    let metrics = snapshot().to_json();
    if let Err(e) = std::fs::write(&path, metrics) {
        eprintln!("warning: CC_OBS_OUT {}: {e}", path.display());
        return;
    }
    let trace = with_tracer(|t| t.to_chrome_json());
    let trace_path = {
        let mut p = path.into_os_string();
        p.push(".trace.json");
        std::path::PathBuf::from(p)
    };
    if let Err(e) = std::fs::write(&trace_path, trace) {
        eprintln!("warning: CC_OBS_OUT {}: {e}", trace_path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_set_snapshot_roundtrip() {
        bump("test.obs.counter", 2);
        bump("test.obs.counter", 1);
        set("test.obs.gauge", 9);
        let snap = snapshot();
        assert_eq!(snap.get("test.obs.counter"), Some(3));
        assert_eq!(snap.get("test.obs.gauge"), Some(9));
    }

    #[test]
    fn span_returns_the_closure_value_and_records() {
        let before = with_tracer(|t| t.len());
        let v = span("unit", "test", 0, || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(with_tracer(|t| t.len()), before + 1);
    }
}
