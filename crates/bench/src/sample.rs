//! `SampledReplay` — the production-scale entry point of the sampled
//! simulation pipeline, alongside [`crate::replay::SearchReplay`].
//!
//! `SearchReplay` replays every event it generates; its cost is linear
//! in the search count, which caps practical workloads around the serve
//! replay budget. `SampledReplay` runs the cc-sample pipeline instead:
//!
//! 1. **Stream + fingerprint.** The workload is generated in fixed-size
//!    intervals of `interval_searches` searches. Each interval is packed
//!    ([`crate::replay::pack_full`]), fingerprinted, and then *dropped*
//!    unless it fits a retention budget — crucially, the interval's RNG
//!    checkpoint (a [`SplitMix64`] clone, 8 bytes) is recorded first, so
//!    any interval can be regenerated on demand, bit-identically, in
//!    O(interval) time. A trace 50× past the full-replay ceiling never
//!    exists in memory at once.
//! 2. **Cluster** the signatures ([`cc_sample::cluster`]).
//! 3. **Replay representatives** behind warmup windows
//!    ([`cc_sample::replay_representatives`]), regenerating each needed
//!    interval (representative and warmup predecessors) from its
//!    checkpoint when it was not retained.
//! 4. **Extrapolate** ([`cc_sample::extrapolate`]) and, when requested,
//!    measure per-counter error against a full ground-truth replay.
//!
//! Results are cached in the [`TraceStore`]'s sampled side cache, keyed
//! by the trace coordinates *and* the sampling configuration
//! ([`cc_sample::SampleConfig::key_fold`]), in a byte-stable compact
//! encoding — a warm server answers an over-budget request without
//! generating a single event.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::Arc;

use cc_core::rng::SplitMix64;
use cc_sample::replay::{replay_representatives, run_plan_full, SampleDegradation};
use cc_sample::Counters;
use cc_sample::{
    cluster, error_report, extrapolate, replay_full, ErrorReport, SampleConfig, SamplePlan,
    SampledStats, Signature,
};
use cc_sim::event::TraceBuffer;
use cc_sim::{MachineConfig, TraceBuf};
use cc_sweep::{TraceKey, TraceStore};

use crate::replay::pack_full;

/// Sampling parameters for one [`SampledReplay`] run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampledSpec {
    /// The cc-sample pipeline configuration (clusters, warmup, seed,
    /// stride, calibrated bound).
    pub sample: SampleConfig,
    /// Searches per interval. The interval is the sampling quantum:
    /// smaller intervals see phases more sharply but leave less warmup
    /// history per representative.
    pub interval_searches: u64,
    /// In-memory retention budget for fingerprinted intervals, used
    /// only when probing is off (probed intervals are never complete,
    /// so they are never retained). Retained intervals skip
    /// regeneration at representative-replay time; the rest cost one
    /// extra generation pass each. Retention never changes results,
    /// only wall time.
    pub retain_bytes: usize,
    /// Fingerprint every `2^probe_shift`-th search of an interval
    /// (keys are still drawn for every search, so the RNG stream — and
    /// therefore every regenerated interval — is unchanged). Probing is
    /// what makes the fingerprint pass cheaper than generation itself:
    /// without it, generating every event to fingerprint it caps the
    /// end-to-end speedup near the generation/replay cost ratio.
    /// Interval event weights are estimated from the probed searches
    /// (exact in expectation; the per-cluster sum averages the noise
    /// down). Ignored (treated as 0) when the plan degenerates to rate
    /// 1.0, where every interval is replayed anyway and exact weights
    /// preserve bit-identity with full replay.
    pub probe_shift: u32,
    /// Also run the full persistent replay as ground truth and attach a
    /// per-counter [`ErrorReport`]. Costs what a full replay costs —
    /// meant for calibration sweeps, not production answers.
    pub ground_truth: bool,
}

impl Default for SampledSpec {
    fn default() -> Self {
        SampledSpec {
            interval_searches: 8192,
            sample: SampleConfig::default(),
            probe_shift: 3,
            retain_bytes: 64 << 20,
            ground_truth: false,
        }
    }
}

impl SampledSpec {
    /// Folds everything that changes sampled results into a store key.
    pub fn fold_key(&self, key: TraceKey) -> TraceKey {
        key.fold(0x5A4D_71E0)
            .fold(self.interval_searches)
            .fold(u64::from(self.probe_shift))
            .fold(self.sample.key_fold())
    }
}

/// A sampled run was cancelled by the caller's cooperative cancel hook.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

/// The outcome of a sampled replay.
#[derive(Clone, Debug, PartialEq)]
pub struct SampledResult {
    /// Extrapolated counters plus coverage/confidence/error-bound.
    pub stats: SampledStats,
    /// Intervals the trace was sliced into.
    pub intervals: usize,
    /// Representatives replayed (clusters).
    pub representatives: usize,
    /// Searches per interval.
    pub interval_searches: u64,
    /// Total searches the estimate speaks for.
    pub total_searches: u64,
    /// Sampler fault-plane counters.
    pub degradation: SampleDegradation,
    /// Per-counter error vs ground truth, when the spec requested one.
    pub error: Option<ErrorReport>,
    /// Whether the result was served from the store's sampled cache.
    pub from_cache: bool,
}

impl SampledResult {
    /// Average simulated microseconds per search by the Section 5.1
    /// formula, from the extrapolated counters.
    pub fn avg_us_per_search(&self, machine: &MachineConfig) -> f64 {
        let c = &self.stats.counters;
        let cycles = c.memory_cycles as f64 + c.insts as f64 / 4.0;
        cycles / self.total_searches as f64 / machine.cycles_per_us()
    }

    /// Byte-stable compact encoding for the store's sampled side cache.
    /// Floats are encoded as bit patterns, so a decode round-trips
    /// exactly. The error report and fault counters are deliberately
    /// *not* encoded: faulted or calibration runs are never cached.
    pub fn encode_compact(&self) -> String {
        let mut s = format!(
            "ccsample v1 intervals={:x} reps={:x} per={:x} total={:x} cov={:016x} conf={:016x} bound={:016x}",
            self.intervals,
            self.representatives,
            self.interval_searches,
            self.total_searches,
            self.stats.coverage_pct.to_bits(),
            self.stats.confidence_pct.to_bits(),
            self.stats.error_bound_pct.to_bits(),
        );
        for (name, v) in self.stats.counters.named() {
            s.push_str(&format!(" {name}={v:x}"));
        }
        s.push('\n');
        s
    }

    /// Inverse of [`SampledResult::encode_compact`]; `None` on any
    /// corruption (a mangled cache entry is regenerated, never trusted).
    pub fn decode_compact(text: &str) -> Option<SampledResult> {
        let line = text.lines().next()?;
        let mut fields: BTreeMap<&str, &str> = BTreeMap::new();
        let mut words = line.split_ascii_whitespace();
        if words.next()? != "ccsample" || words.next()? != "v1" {
            return None;
        }
        for w in words {
            let (k, v) = w.split_once('=')?;
            if fields.insert(k, v).is_some() {
                return None;
            }
        }
        let hex = |k: &str| -> Option<u64> { u64::from_str_radix(fields.get(k)?, 16).ok() };
        let counters = Counters {
            l1_accesses: hex("l1_accesses")?,
            l1_misses: hex("l1_misses")?,
            l1_evictions: hex("l1_evictions")?,
            l2_accesses: hex("l2_accesses")?,
            l2_misses: hex("l2_misses")?,
            l2_evictions: hex("l2_evictions")?,
            tlb_accesses: hex("tlb_accesses")?,
            tlb_misses: hex("tlb_misses")?,
            memory_cycles: hex("memory_cycles")?,
            insts: hex("insts")?,
            branches: hex("branches")?,
            events: hex("events")?,
        };
        Some(SampledResult {
            stats: SampledStats {
                counters,
                coverage_pct: f64::from_bits(hex("cov")?),
                confidence_pct: f64::from_bits(hex("conf")?),
                error_bound_pct: f64::from_bits(hex("bound")?),
            },
            intervals: hex("intervals")? as usize,
            representatives: hex("reps")? as usize,
            interval_searches: hex("per")?,
            total_searches: hex("total")?,
            degradation: SampleDegradation::default(),
            error: None,
            from_cache: true,
        })
    }
}

/// The sampled measurement loop: configuration is bound at construction,
/// [`SampledReplay::run`] executes the pipeline for a search closure.
pub struct SampledReplay<'a> {
    machine: MachineConfig,
    shards: usize,
    store: Option<&'a TraceStore>,
    key: TraceKey,
    n: u64,
    seed: u64,
    spec: SampledSpec,
    poison: BTreeSet<usize>,
    cancel: Option<&'a dyn Fn() -> bool>,
}

impl<'a> SampledReplay<'a> {
    /// Creates a sampled loop over a tree with `n` keys, mirroring
    /// [`crate::replay::SearchReplay::new`]: `key` must already
    /// distinguish the workload; machine, size, and seed are folded in
    /// here, and the sampling configuration is folded at cache time.
    pub fn new(
        machine: MachineConfig,
        n: u64,
        seed: u64,
        shards: usize,
        store: Option<&'a TraceStore>,
        key: TraceKey,
        spec: SampledSpec,
    ) -> Self {
        SampledReplay {
            machine,
            shards,
            store,
            key: key.machine(&machine).fold(n).fold(seed),
            n,
            seed,
            spec,
            poison: BTreeSet::new(),
            cancel: None,
        }
    }

    /// Poisons representative replays by cluster ordinal — the cc-fault
    /// sampler plane. Poisoned runs bypass the result cache in both
    /// directions.
    pub fn poison(&mut self, reps: BTreeSet<usize>) {
        self.poison = reps;
    }

    /// Installs a cooperative cancellation hook, polled between
    /// intervals and pipeline phases. When it returns true the run stops
    /// with [`Cancelled`] instead of a result.
    pub fn cancel_with(&mut self, cancel: &'a dyn Fn() -> bool) {
        self.cancel = Some(cancel);
    }

    fn cancelled(&self) -> bool {
        self.cancel.is_some_and(|c| c())
    }

    /// Runs the pipeline for `total_searches` searches. `search` records
    /// one search for a key into a trace buffer, exactly as in
    /// [`crate::replay::SearchReplay::advance_to`]; it is invoked once
    /// per search during fingerprinting and again for every interval a
    /// representative replay needs regenerated.
    pub fn run(
        &mut self,
        total_searches: u64,
        mut search: impl FnMut(u64, &mut TraceBuffer),
    ) -> Result<SampledResult, Cancelled> {
        assert!(total_searches > 0, "sampled replay of zero searches");
        let per = self.spec.interval_searches.max(1);
        let intervals = total_searches.div_ceil(per) as usize;

        // Warm-cache answer: an unfaulted, non-calibration run with a
        // store never generates anything if the sampled result is warm.
        let cacheable = self.store.is_some() && self.poison.is_empty() && !self.spec.ground_truth;
        let sampled_key = self.spec.fold_key(self.key).fold(total_searches);
        if cacheable {
            let store = self.store.expect("cacheable implies store");
            if let Some(hit) = store.sampled_get(sampled_key) {
                if let Some(result) = SampledResult::decode_compact(&hit) {
                    crate::obs::bump("sample.cache_hits", 1);
                    return Ok(result);
                }
            }
        }

        // Phase 1: stream, checkpoint, fingerprint, retain-under-budget.
        crate::obs::bump("sample.runs", 1);
        crate::obs::bump("sample.intervals", intervals as u64);
        let mut rng = SplitMix64::new(self.seed);
        let mut checkpoints: Vec<SplitMix64> = Vec::with_capacity(intervals);
        let mut counts: Vec<u64> = Vec::with_capacity(intervals);
        let mut sigs: Vec<Signature> = Vec::with_capacity(intervals);
        let mut retained: BTreeMap<usize, Arc<Vec<TraceBuf>>> = BTreeMap::new();
        let mut retained_bytes = 0usize;
        let n = self.n;
        let generate =
            |rng: &mut SplitMix64, count: u64, search: &mut dyn FnMut(u64, &mut TraceBuffer)| {
                let mut buf = TraceBuffer::new();
                for _ in 0..count {
                    let k = 2 * rng.below(n);
                    search(k, &mut buf);
                }
                pack_full(&buf)
            };
        // Rate-1.0 plans replay every interval, so probed (approximate)
        // event weights would only break bit-identity with full replay
        // for no savings — force exact fingerprinting there.
        let probe_shift = if self.spec.sample.max_clusters >= intervals {
            0
        } else {
            self.spec.probe_shift
        };
        crate::obs::span("fingerprint", "sample", 0, || -> Result<(), Cancelled> {
            let mut done = 0u64;
            for i in 0..intervals {
                if self.cancelled() {
                    return Err(Cancelled);
                }
                let count = per.min(total_searches - done);
                checkpoints.push(rng.clone());
                counts.push(count);
                if probe_shift == 0 {
                    let bufs = generate(&mut rng, count, &mut search);
                    sigs.push(Signature::from_bufs(&bufs, self.spec.sample.stride_shift));
                    let bytes: usize = bufs.iter().map(TraceBuf::approx_bytes).sum();
                    if retained_bytes + bytes <= self.spec.retain_bytes {
                        retained.insert(i, Arc::new(bufs));
                        retained_bytes += bytes;
                    }
                } else {
                    // Probe mode: every key is drawn (the RNG stream must
                    // match regeneration exactly) but only every
                    // 2^probe_shift-th search is traced and fingerprinted.
                    let mask = (1u64 << probe_shift) - 1;
                    let mut buf = TraceBuffer::new();
                    let mut probed = 0u64;
                    for s in 0..count {
                        let k = 2 * rng.below(n);
                        if s & mask == 0 {
                            search(k, &mut buf);
                            probed += 1;
                        }
                    }
                    let bufs = pack_full(&buf);
                    let mut sig = Signature::from_bufs(&bufs, self.spec.sample.stride_shift);
                    // Scale the probed event count up to an estimate for
                    // the whole interval: exact in expectation, and the
                    // per-cluster weight sums average the noise down.
                    sig.events = (u128::from(sig.events) * u128::from(count)
                        / u128::from(probed.max(1))) as u64;
                    sigs.push(sig);
                }
                done += count;
            }
            Ok(())
        })?;

        // Phase 2: cluster.
        let plan = if self.spec.sample.max_clusters >= intervals {
            SamplePlan::full(&sigs)
        } else {
            cluster(&sigs, &self.spec.sample)
        };
        crate::obs::bump("sample.representatives", plan.representatives() as u64);

        // Phase 3: representative replay, regenerating unretained
        // intervals from their checkpoints (bit-identical by the RNG
        // checkpoint contract — same state, same keys, same trace).
        if self.cancelled() {
            return Err(Cancelled);
        }
        let mut provider = |i: usize| match retained.get(&i) {
            Some(bufs) => Arc::clone(bufs),
            None => {
                crate::obs::bump("sample.regenerated_intervals", 1);
                let mut rng = checkpoints[i].clone();
                Arc::new(generate(&mut rng, counts[i], &mut search))
            }
        };
        let replay = crate::obs::span("representatives", "sample", 0, || {
            if plan.is_full() {
                run_plan_full(&self.machine, self.shards, &plan, &mut provider)
            } else {
                replay_representatives(
                    &self.machine,
                    self.shards,
                    &plan,
                    &sigs,
                    self.spec.sample.warmup_intervals,
                    &self.poison,
                    &mut provider,
                )
            }
        });
        crate::obs::bump(
            "sample.fallback_representatives",
            replay.degradation.fallback_representatives,
        );
        crate::obs::bump(
            "sample.lost_representatives",
            replay.degradation.lost_representatives,
        );

        // Phase 4: extrapolate, plus optional measured ground truth.
        let mut stats = extrapolate(&plan, &replay, &self.spec.sample);
        let mut error = None;
        if self.spec.ground_truth {
            if self.cancelled() {
                return Err(Cancelled);
            }
            let (truth, _) = crate::obs::span("ground-truth", "sample", 0, || {
                replay_full(&self.machine, self.shards, intervals, &mut provider)
            });
            let report = error_report(&stats.counters, &truth);
            stats.error_bound_pct = report.max_error_pct;
            error = Some(report);
        }

        let result = SampledResult {
            stats,
            intervals,
            representatives: plan.representatives(),
            interval_searches: per,
            total_searches,
            degradation: replay.degradation,
            error,
            from_cache: false,
        };
        if cacheable {
            let store = self.store.expect("cacheable implies store");
            store.sampled_put(sampled_key, result.encode_compact());
        }
        Ok(result)
    }
}

impl std::fmt::Debug for SampledReplay<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SampledReplay")
            .field("n", &self.n)
            .field("shards", &self.shards)
            .field("spec", &self.spec)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{build_bst, SearchReplay, TreeSpec};

    fn spec() -> TreeSpec {
        TreeSpec {
            randomize: Some(0xA11),
            depth_first: false,
            morph: false,
        }
    }

    fn quick_spec(interval_searches: u64, clusters: usize, ground_truth: bool) -> SampledSpec {
        SampledSpec {
            interval_searches,
            sample: SampleConfig {
                max_clusters: clusters,
                ..SampleConfig::default()
            },
            probe_shift: 2,
            retain_bytes: 1 << 20,
            ground_truth,
        }
    }

    #[test]
    fn rate_one_matches_search_replay_bit_identically() {
        let machine = MachineConfig::ultrasparc_e5000();
        let (n, seed, searches) = (1023u64, 0x51EE7u64, 600u64);
        let t = build_bst(&machine, n, spec());
        let key = spec().fold_key(TraceKey::new("sampled-test"));

        let mut full = SearchReplay::new(machine, n, seed, 2, None, key);
        full.advance_to(searches, |k, buf| {
            t.search(k, buf, false);
        });

        // interval = 100 searches, clusters ≥ intervals ⇒ rate 1.0.
        let mut sampled = SampledReplay::new(
            machine,
            n,
            seed,
            2,
            None,
            key,
            quick_spec(100, usize::MAX, false),
        );
        let result = sampled
            .run(searches, |k, buf| {
                t.search(k, buf, false);
            })
            .expect("not cancelled");
        assert_eq!(result.representatives, result.intervals);
        let r = full.replayer();
        assert_eq!(result.stats.counters.l1_misses, r.l1_stats().misses());
        assert_eq!(result.stats.counters.memory_cycles, r.memory_cycles());
        assert_eq!(result.stats.counters.insts, r.insts());
        assert_eq!(
            result.avg_us_per_search(&machine).to_bits(),
            full.avg_us_per_search().to_bits(),
        );
    }

    #[test]
    fn sampled_estimate_tracks_ground_truth_on_fig5_searches() {
        let machine = MachineConfig::ultrasparc_e5000();
        // Sampling's regime: a working set several times L2 (4 MB tree
        // vs 1 MB L2) and a trace long enough that steady-state misses
        // dwarf the one-time cold misses no warmed representative can
        // reproduce. Small fits-in-L2 trees make l2_misses nearly all
        // compulsory — not an extrapolatable quantity at any rate.
        let (n, seed, searches) = (131_071u64, 7u64, 160_000u64);
        let t = build_bst(&machine, n, spec());
        let key = spec().fold_key(TraceKey::new("sampled-truth"));
        let mut sampled = SampledReplay::new(
            machine,
            n,
            seed,
            2,
            None,
            key,
            SampledSpec {
                interval_searches: 4000,
                probe_shift: 3,
                retain_bytes: 1 << 20,
                ground_truth: true,
                sample: SampleConfig::default(),
            },
        );
        let result = sampled
            .run(searches, |k, buf| {
                t.search(k, buf, false);
            })
            .expect("not cancelled");
        let report = result.error.expect("ground truth requested");
        assert!(
            report.max_error_pct <= 2.0,
            "extrapolation error {:.3}% on {} (gate 2%)",
            report.max_error_pct,
            report.worst,
        );
        assert_eq!(result.stats.coverage_pct, 100.0);
        assert!(result.representatives < result.intervals);
    }

    #[test]
    fn sampled_results_are_cached_and_round_trip_byte_stably() {
        let machine = MachineConfig::ultrasparc_e5000();
        let (n, seed, searches) = (511u64, 3u64, 2_000u64);
        let t = build_bst(&machine, n, spec());
        let key = spec().fold_key(TraceKey::new("sampled-cache"));
        let store = TraceStore::default();
        let run = |store: &TraceStore| {
            let mut sampled = SampledReplay::new(
                machine,
                n,
                seed,
                1,
                Some(store),
                key,
                quick_spec(250, 2, false),
            );
            sampled
                .run(searches, |k, buf| {
                    t.search(k, buf, false);
                })
                .expect("not cancelled")
        };
        let cold = run(&store);
        assert!(!cold.from_cache);
        let warm = run(&store);
        assert!(warm.from_cache, "second run must be served from cache");
        assert_eq!(warm.stats, cold.stats);
        assert_eq!(store.counters().sampled_hits, 1);
        // Byte stability: encoding the warm result reproduces the cached
        // bytes exactly.
        assert_eq!(warm.encode_compact(), cold.encode_compact());
        let decoded = SampledResult::decode_compact(&cold.encode_compact()).expect("round trip");
        assert_eq!(decoded.stats, cold.stats);
    }

    #[test]
    fn cancel_hook_stops_the_run() {
        let machine = MachineConfig::ultrasparc_e5000();
        let t = build_bst(&machine, 255, spec());
        let key = spec().fold_key(TraceKey::new("sampled-cancel"));
        let mut sampled =
            SampledReplay::new(machine, 255, 1, 1, None, key, quick_spec(100, 2, false));
        let cancel = || true;
        sampled.cancel_with(&cancel);
        let out = sampled.run(1000, |k, buf| {
            t.search(k, buf, false);
        });
        assert_eq!(out, Err(Cancelled));
    }
}
