//! Shared checkpoint plumbing for the figure binaries.
//!
//! `fig5` and `fig7` each grew a private copy of the same three things
//! during the checkpoint port: the field separator, the hex-stable `f64`
//! codec (times and scores must survive a crash/resume round trip
//! *bit-identically*, so they travel as `to_bits` hex, never decimal),
//! and the `CC_SWEEP_CHECKPOINT` dispatch between [`Sweep::run`] and
//! [`Sweep::run_checkpointed`]. The copies had already drifted in small
//! ways; this module is the single home for all three.

use cc_sweep::Sweep;
use std::path::Path;

/// Registry key counting checkpoint files that could not be opened and
/// degraded to an uncheckpointed run.
pub const CHECKPOINT_OPEN_FAILURES: &str = "checkpoint.open_failures";

/// Field separator for checkpoint payloads. The sweep checkpoint escapes
/// newlines and tabs itself; this byte never occurs in logs, audit text,
/// or hex fields.
pub const SEP: char = '\x1f';

/// Renders an `f64` as its bit pattern in fixed-width hex — the only
/// encoding that makes a resumed figure bit-identical to an uninterrupted
/// one (decimal formatting rounds).
///
/// *Every* bit pattern round-trips, NaNs included: a NaN travels as its
/// exact payload bits, with no canonicalization anywhere in the codec,
/// so a checkpoint resume can never change the bytes of a figure that
/// printed `NaN`. The property test below pins this over raw patterns.
pub fn encode_f64(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Inverse of [`encode_f64`]; `None` on malformed hex.
pub fn decode_f64(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Encodes a slice of `f64`s as comma-joined bit patterns.
pub fn encode_f64s(xs: &[f64]) -> String {
    let words: Vec<String> = xs.iter().map(|x| encode_f64(*x)).collect();
    words.join(",")
}

/// Inverse of [`encode_f64s`]; `None` on any malformed word.
pub fn decode_f64s(s: &str) -> Option<Vec<f64>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(',').map(decode_f64).collect()
}

/// Encodes an optional `f64`: `-` for `None`, the bit pattern otherwise.
pub fn encode_opt_f64(x: Option<f64>) -> String {
    x.map_or_else(|| "-".to_string(), encode_f64)
}

/// Inverse of [`encode_opt_f64`]. The outer `Option` is the parse result
/// (`None` = malformed), the inner is the value.
pub fn decode_opt_f64(s: &str) -> Option<Option<f64>> {
    match s {
        "-" => Some(None),
        bits => decode_f64(bits).map(Some),
    }
}

/// Runs a figure's cell grid with the standard `CC_SWEEP_CHECKPOINT`
/// contract: when the variable names a path, the sweep runs crash-durably
/// against it under `tag` (append-on-complete, resume-on-rerun); when it
/// is unset, nothing touches the filesystem. Cells that fail outright
/// panic with the figure's name — a figure with holes is not a figure.
///
/// An *unusable* checkpoint path (unopenable file, read-only or missing
/// directory) is not a figure failure: per the degradation contract the
/// run warns on stderr, bumps [`CHECKPOINT_OPEN_FAILURES`] in the
/// metrics registry, and continues uncheckpointed with identical
/// results — only crash durability is lost.
pub fn run_grid<C, R, F, E, D>(
    figure: &str,
    tag: &str,
    grid: &[C],
    run: F,
    encode: E,
    decode: D,
) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(usize, u32, &C) -> R + Sync,
    E: Fn(&R) -> String + Sync,
    D: Fn(&str) -> Option<R>,
{
    let checkpoint = std::env::var_os("CC_SWEEP_CHECKPOINT").map(std::path::PathBuf::from);
    run_grid_at(
        figure,
        tag,
        checkpoint.as_deref(),
        grid,
        run,
        encode,
        decode,
    )
}

/// The env-free core of [`run_grid`]: `checkpoint` is the resolved
/// `CC_SWEEP_CHECKPOINT` path, if any. Split out so the degradation
/// path is testable without mutating the process environment.
#[allow(clippy::too_many_arguments)]
pub fn run_grid_at<C, R, F, E, D>(
    figure: &str,
    tag: &str,
    checkpoint: Option<&Path>,
    grid: &[C],
    run: F,
    encode: E,
    decode: D,
) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(usize, u32, &C) -> R + Sync,
    E: Fn(&R) -> String + Sync,
    D: Fn(&str) -> Option<R>,
{
    let timed = |i: usize, attempt: u32, cell: &C| {
        crate::obs::span(&format!("{figure}[{i}]"), "sweep", 0, || {
            run(i, attempt, cell)
        })
    };
    if let Some(path) = checkpoint {
        match Sweep::new().run_checkpointed(grid, 1, path, tag, &timed, &encode, &decode) {
            Ok(outcomes) => {
                return outcomes
                    .into_iter()
                    .map(|o| {
                        o.into_result()
                            .unwrap_or_else(|| panic!("{figure} cell failed"))
                    })
                    .collect();
            }
            Err(e) => {
                eprintln!(
                    "warning: {figure}: checkpoint {} unusable ({e}); \
                     continuing without crash durability",
                    path.display()
                );
                crate::obs::bump(CHECKPOINT_OPEN_FAILURES, 1);
            }
        }
    }
    Sweep::new().run(grid, |i, cell| timed(i, 0, cell))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every raw bit pattern — NaN payloads, signalling bits,
        /// subnormals, both infinities — survives the codec exactly.
        /// `f64::NAN == f64::NAN` is false, so the assertion compares
        /// bits, which is also the property checkpoint resumes need.
        #[test]
        fn f64_codec_roundtrips_every_bit_pattern(bits in any::<u64>()) {
            let encoded = encode_f64(f64::from_bits(bits));
            let back = decode_f64(&encoded).expect("codec output parses");
            prop_assert_eq!(back.to_bits(), bits);
        }
    }

    #[test]
    fn nan_payload_is_preserved_verbatim() {
        // A quiet NaN with a distinctive payload: canonicalizing codecs
        // collapse this to f64::NAN's bits and fail here.
        let bits = 0x7ff8_dead_beef_cafe_u64;
        let encoded = encode_f64(f64::from_bits(bits));
        assert_eq!(encoded, "7ff8deadbeefcafe");
        assert_eq!(decode_f64(&encoded).unwrap().to_bits(), bits);
    }

    #[test]
    fn unusable_checkpoint_path_degrades_to_uncheckpointed() {
        // A path whose parent is a regular file can never be opened —
        // the reliable stand-in for a read-only checkpoint directory
        // (plain permission checks don't bind when tests run as root).
        let blocker = std::env::temp_dir().join(format!("cc-ck-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let unopenable = blocker.join("checkpoint");

        let before = crate::obs::snapshot()
            .get(CHECKPOINT_OPEN_FAILURES)
            .unwrap_or(0);
        let cells: Vec<u64> = (0..4).collect();
        let out = run_grid_at(
            "test",
            "t",
            Some(unopenable.as_path()),
            &cells,
            |_, _, &c| c + 10,
            |r| r.to_string(),
            |s| s.parse().ok(),
        );
        assert_eq!(out, vec![10, 11, 12, 13], "results survive degradation");
        let after = crate::obs::snapshot()
            .get(CHECKPOINT_OPEN_FAILURES)
            .unwrap_or(0);
        assert_eq!(after, before + 1, "degradation is counted");
        std::fs::remove_file(&blocker).unwrap();
    }

    #[test]
    fn read_only_dir_checkpoint_degrades_when_permissions_bind() {
        use std::os::unix::fs::PermissionsExt;
        let dir = std::env::temp_dir().join(format!("cc-ck-ro-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o555)).unwrap();
        // Root ignores directory permissions; only assert degradation
        // when the read-only bit actually binds for this process.
        let binds = std::fs::write(dir.join("probe"), b"x").is_err();

        let cells: Vec<u64> = (0..3).collect();
        let out = run_grid_at(
            "test-ro",
            "t",
            Some(dir.join("checkpoint").as_path()),
            &cells,
            |_, _, &c| c * 3,
            |r| r.to_string(),
            |s| s.parse().ok(),
        );
        assert_eq!(out, vec![0, 3, 6], "read-only dir never loses results");
        if binds {
            let count = crate::obs::snapshot()
                .get(CHECKPOINT_OPEN_FAILURES)
                .unwrap_or(0);
            assert!(count >= 1, "read-only dir counted as degradation");
        }
        std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o755)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn f64_codec_is_bit_exact() {
        for x in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, 1e300, f64::INFINITY] {
            assert_eq!(decode_f64(&encode_f64(x)), Some(x));
        }
        let nan = decode_f64(&encode_f64(f64::NAN)).unwrap();
        assert!(nan.is_nan());
        assert_eq!(decode_f64("xyz"), None);
        let xs = [0.25, -3.5, 1e-12];
        assert_eq!(decode_f64s(&encode_f64s(&xs)).as_deref(), Some(&xs[..]));
        assert_eq!(decode_f64s("").as_deref(), Some(&[][..]));
        assert_eq!(decode_opt_f64(&encode_opt_f64(None)), Some(None));
        assert_eq!(decode_opt_f64(&encode_opt_f64(Some(2.0))), Some(Some(2.0)));
        assert_eq!(decode_opt_f64("nope"), None);
    }

    #[test]
    fn run_grid_without_env_is_a_plain_sweep() {
        // The test environment must not leak a checkpoint path in here.
        assert!(
            std::env::var_os("CC_SWEEP_CHECKPOINT").is_none(),
            "CC_SWEEP_CHECKPOINT set during tests"
        );
        let cells: Vec<u64> = (0..6).collect();
        let out = run_grid(
            "test",
            "t",
            &cells,
            |_, _, &c| c * 2,
            |r| r.to_string(),
            |s| s.parse().ok(),
        );
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
    }
}
