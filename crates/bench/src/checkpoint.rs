//! Shared checkpoint plumbing for the figure binaries.
//!
//! `fig5` and `fig7` each grew a private copy of the same three things
//! during the checkpoint port: the field separator, the hex-stable `f64`
//! codec (times and scores must survive a crash/resume round trip
//! *bit-identically*, so they travel as `to_bits` hex, never decimal),
//! and the `CC_SWEEP_CHECKPOINT` dispatch between [`Sweep::run`] and
//! [`Sweep::run_checkpointed`]. The copies had already drifted in small
//! ways; this module is the single home for all three.

use cc_sweep::Sweep;
use std::path::Path;

/// Field separator for checkpoint payloads. The sweep checkpoint escapes
/// newlines and tabs itself; this byte never occurs in logs, audit text,
/// or hex fields.
pub const SEP: char = '\x1f';

/// Renders an `f64` as its bit pattern in fixed-width hex — the only
/// encoding that makes a resumed figure bit-identical to an uninterrupted
/// one (decimal formatting rounds).
pub fn encode_f64(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Inverse of [`encode_f64`]; `None` on malformed hex.
pub fn decode_f64(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Encodes a slice of `f64`s as comma-joined bit patterns.
pub fn encode_f64s(xs: &[f64]) -> String {
    let words: Vec<String> = xs.iter().map(|x| encode_f64(*x)).collect();
    words.join(",")
}

/// Inverse of [`encode_f64s`]; `None` on any malformed word.
pub fn decode_f64s(s: &str) -> Option<Vec<f64>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(',').map(decode_f64).collect()
}

/// Encodes an optional `f64`: `-` for `None`, the bit pattern otherwise.
pub fn encode_opt_f64(x: Option<f64>) -> String {
    x.map_or_else(|| "-".to_string(), encode_f64)
}

/// Inverse of [`encode_opt_f64`]. The outer `Option` is the parse result
/// (`None` = malformed), the inner is the value.
pub fn decode_opt_f64(s: &str) -> Option<Option<f64>> {
    match s {
        "-" => Some(None),
        bits => decode_f64(bits).map(Some),
    }
}

/// Runs a figure's cell grid with the standard `CC_SWEEP_CHECKPOINT`
/// contract: when the variable names a path, the sweep runs crash-durably
/// against it under `tag` (append-on-complete, resume-on-rerun); when it
/// is unset, nothing touches the filesystem. Cells that fail outright
/// panic with the figure's name — a figure with holes is not a figure.
pub fn run_grid<C, R, F, E, D>(
    figure: &str,
    tag: &str,
    grid: &[C],
    run: F,
    encode: E,
    decode: D,
) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(usize, u32, &C) -> R + Sync,
    E: Fn(&R) -> String + Sync,
    D: Fn(&str) -> Option<R>,
{
    match std::env::var_os("CC_SWEEP_CHECKPOINT") {
        Some(path) => Sweep::new()
            .run_checkpointed(grid, 1, Path::new(&path), tag, run, encode, decode)
            .expect("opening the sweep checkpoint file")
            .into_iter()
            .map(|o| {
                o.into_result()
                    .unwrap_or_else(|| panic!("{figure} cell failed"))
            })
            .collect(),
        None => Sweep::new().run(grid, |i, cell| run(i, 0, cell)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_codec_is_bit_exact() {
        for x in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, 1e300, f64::INFINITY] {
            assert_eq!(decode_f64(&encode_f64(x)), Some(x));
        }
        let nan = decode_f64(&encode_f64(f64::NAN)).unwrap();
        assert!(nan.is_nan());
        assert_eq!(decode_f64("xyz"), None);
        let xs = [0.25, -3.5, 1e-12];
        assert_eq!(decode_f64s(&encode_f64s(&xs)).as_deref(), Some(&xs[..]));
        assert_eq!(decode_f64s("").as_deref(), Some(&[][..]));
        assert_eq!(decode_opt_f64(&encode_opt_f64(None)), Some(None));
        assert_eq!(decode_opt_f64(&encode_opt_f64(Some(2.0))), Some(Some(2.0)));
        assert_eq!(decode_opt_f64("nope"), None);
    }

    #[test]
    fn run_grid_without_env_is_a_plain_sweep() {
        // The test environment must not leak a checkpoint path in here.
        assert!(
            std::env::var_os("CC_SWEEP_CHECKPOINT").is_none(),
            "CC_SWEEP_CHECKPOINT set during tests"
        );
        let cells: Vec<u64> = (0..6).collect();
        let out = run_grid(
            "test",
            "t",
            &cells,
            |_, _, &c| c * 2,
            |r| r.to_string(),
            |s| s.parse().ok(),
        );
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
    }
}
