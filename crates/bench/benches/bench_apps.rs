//! Host-time trend bench for the macrobenchmark apps at tiny scale.

use cc_apps::radiance::{self, Layout, RadianceParams};
use cc_apps::vis::{self, AllocPolicy, VisParams};
use cc_sim::MachineConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let machine = MachineConfig::ultrasparc_e5000();
    let rp = RadianceParams {
        objects: 1_000,
        world: 1024,
        rays: 1_000,
        seed: 3,
    };
    for l in Layout::ALL {
        c.bench_function(&format!("apps/radiance_{}", l.label()), |b| {
            b.iter(|| black_box(radiance::run(l, &rp, &machine).breakdown.total()))
        });
    }
    let vp = VisParams {
        bits: 8,
        evals: 2_000,
        seed: 3,
    };
    for p in AllocPolicy::ALL {
        c.bench_function(&format!("apps/vis_{}", p.label()), |b| {
            b.iter(|| black_box(vis::run(p, &vp, &machine).breakdown.total()))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
