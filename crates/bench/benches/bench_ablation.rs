//! Host-time trend bench for the reorganizer itself: how fast is a
//! `ccmorph` of an N-node tree, per cluster kind and with/without
//! coloring.

use cc_core::ccmorph::{ccmorph, CcMorphParams, ColorConfig};
use cc_core::cluster::ClusterKind;
use cc_core::topology::VecTree;
use cc_heap::VirtualSpace;
use cc_sim::MachineConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let machine = MachineConfig::ultrasparc_e5000();
    let tree = VecTree::complete_binary((1 << 16) - 1);
    for (name, kind, color) in [
        ("subtree", ClusterKind::SubtreeBfs, false),
        ("subtree_colored", ClusterKind::SubtreeBfs, true),
        ("dfs_chain", ClusterKind::DepthFirstChain, false),
    ] {
        c.bench_function(&format!("ccmorph/{name}_64k_nodes"), |b| {
            b.iter(|| {
                let mut vs = VirtualSpace::new(machine.page_bytes);
                let params = CcMorphParams {
                    color: color.then(ColorConfig::default),
                    cluster_kind: kind,
                    ..CcMorphParams::clustering_only(&machine, 20)
                };
                black_box(ccmorph(&tree, &mut vs, &params).len())
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
