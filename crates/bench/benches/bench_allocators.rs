//! Allocator micro-throughput: the simulated `malloc` vs `ccmalloc`
//! strategies under a hinted chain-allocation pattern.

use cc_heap::{Allocator, CcMalloc, Malloc, Strategy};
use cc_sim::MachineConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const ALLOCS: usize = 10_000;

fn chain<A: Allocator>(heap: &mut A) -> u64 {
    let mut prev = heap.alloc(20);
    for _ in 1..ALLOCS {
        prev = heap.alloc_hint(20, Some(prev));
    }
    prev
}

fn bench(c: &mut Criterion) {
    let machine = MachineConfig::ultrasparc_e5000();
    c.bench_function("alloc/malloc", |b| {
        b.iter(|| {
            let mut heap = Malloc::new(8192);
            black_box(chain(&mut heap))
        })
    });
    for s in Strategy::ALL {
        c.bench_function(&format!("alloc/ccmalloc_{}", s.label()), |b| {
            b.iter(|| {
                let mut heap = CcMalloc::new(&machine, s);
                black_box(chain(&mut heap))
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
