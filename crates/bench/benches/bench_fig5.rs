//! Host-time trend bench for the Figure 5 microbenchmark machinery:
//! simulated random searches under each tree layout.

use cc_core::ccmorph::CcMorphParams;
use cc_core::cluster::Order;
use cc_core::rng::SplitMix64;
use cc_heap::VirtualSpace;
use cc_sim::{MachineConfig, MemorySink};
use cc_trees::bst::Bst;
use cc_trees::BST_NODE_BYTES;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const N: u64 = (1 << 15) - 1;
const SEARCHES: u64 = 2_000;

fn searches(c: &mut Criterion, name: &str, tree: &Bst, machine: &MachineConfig) {
    c.bench_function(name, |b| {
        b.iter(|| {
            let mut sink = MemorySink::new(*machine);
            let mut rng = SplitMix64::new(3);
            for _ in 0..SEARCHES {
                black_box(tree.search(2 * rng.below(N), &mut sink, false));
            }
            black_box(sink.memory_cycles())
        })
    });
}

fn bench(c: &mut Criterion) {
    let machine = MachineConfig::ultrasparc_e5000();
    let mut tree = Bst::build_complete(N);

    tree.layout_sequential(Order::Random { seed: 1 });
    searches(c, "fig5/search_random_layout", &tree, &machine);

    tree.layout_sequential(Order::DepthFirst);
    searches(c, "fig5/search_dfs_layout", &tree, &machine);

    let mut vs = VirtualSpace::new(machine.page_bytes);
    tree.morph(
        &mut vs,
        &CcMorphParams::clustering_and_coloring(&machine, BST_NODE_BYTES),
    );
    searches(c, "fig5/search_ctree_layout", &tree, &machine);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
