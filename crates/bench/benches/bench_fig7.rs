//! Host-time trend bench for the Figure 7 pipeline: one treeadd run per
//! representative scheme.

use cc_olden::{treeadd, Scheme};
use cc_sim::MachineConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let machine = MachineConfig::table1();
    for s in [
        Scheme::Base,
        Scheme::SwPrefetch,
        Scheme::CcMallocNewBlock,
        Scheme::CcMorphClusterColor,
    ] {
        c.bench_function(&format!("fig7/treeadd_{}", s.label()), |b| {
            b.iter(|| black_box(treeadd::run(s, 8_192, &machine).breakdown.total()))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
