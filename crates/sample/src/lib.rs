//! Representative-interval sampled simulation (cc-sample).
//!
//! Every other engine in this reproduction — scalar, batched, sharded —
//! replays a trace in full, so simulation cost scales with trace length
//! and cc-serve must refuse workloads past its replay budget. This crate
//! implements the phase-sampling alternative (after Bueno et al.,
//! "Improving the Representativeness of Simulation Intervals for the
//! Cache Memory System"): most programs cycle through a small set of
//! *phases*, so a handful of representative intervals, replayed exactly
//! and weighted by how much of the trace each phase covers, recovers
//! full-replay statistics to within a small measured error.
//!
//! The pipeline is four stages, one module each:
//!
//! 1. **Fingerprint** ([`signature`]) — slice the packed [`TraceBuf`]
//!    stream into fixed-size intervals and reduce each to a cheap
//!    [`Signature`]: a bucketed block-address footprint vector plus a
//!    read/write mix, streamed straight off the packed lanes with no
//!    simulation. When a prior attributed replay exists, cc-obs
//!    [`MissProfile`](cc_obs::MissProfile) per-region miss tallies can be
//!    folded in ([`Signature::attach_regions`]) to sharpen the phase
//!    distance with *measured* miss behaviour.
//! 2. **Cluster** ([`cluster`]) — group the signatures k-medoids-style
//!    with a deterministic seeded init: same seed and config, same plan,
//!    bit for bit.
//! 3. **Replay representatives** ([`replay`]) — each cluster's medoid
//!    interval is replayed through the existing sharded engine behind a
//!    *warmup window*: the preceding interval(s) run unmeasured to load
//!    cache and TLB contents, statistics reset, then the representative
//!    runs measured. A poisoned representative (fault injection) degrades
//!    to a neighbouring-interval fallback with counters — never a silent
//!    wrong number.
//! 4. **Extrapolate** ([`extrapolate`]) — weight each representative's
//!    [`Counters`] by its cluster's share of trace events, and report
//!    per-counter error against an optional full-replay ground truth.
//!
//! Cost therefore scales with *phase diversity* (clusters × interval
//! size), not trace length — the first engine here for which a 100×
//! longer trace of the same program costs roughly the same to simulate.
//!
//! Sample rate 1.0 (every interval its own representative,
//! [`SamplePlan::full`]) is special-cased to a single persistent replayer
//! with no warmup or resets, which *is* the full sharded replay — the
//! proptests pin that it reproduces full-replay statistics bit-identically.

pub mod cluster;
pub mod extrapolate;
pub mod replay;
pub mod signature;

pub use cluster::{cluster, SamplePlan};
pub use extrapolate::{
    error_report, extrapolate, CounterError, Counters, ErrorReport, SampledStats,
};
pub use replay::{replay_full, replay_representatives, PlanReplay, RepOutcome, SampleDegradation};
pub use signature::{slice_intervals, Signature, FOOTPRINT_BUCKETS};

/// Tuning knobs for the whole pipeline. [`SampleConfig::default`] is the
/// calibrated operating point the engine benchmark gates at ≤2% max
/// extrapolation error on the fig5 reference workloads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampleConfig {
    /// Upper bound on clusters (= representatives replayed). Clamped to
    /// the interval count; equality means full replay.
    pub max_clusters: usize,
    /// Intervals replayed unmeasured before each representative to load
    /// cache/TLB contents. Zero measures cold-start bias instead of
    /// steady state — only useful for studying the bias itself. The
    /// default of two is what the calibration sweep needs to hold
    /// residual cold-start error on `l2_misses` under the 2% gate for
    /// working sets several times the L2 capacity.
    pub warmup_intervals: usize,
    /// Seed for the k-medoids init. Folded nowhere else: two runs with
    /// the same seed and config produce identical plans.
    pub seed: u64,
    /// Refinement sweep cap for the k-medoids loop.
    pub max_iters: usize,
    /// Fingerprint every `2^stride_shift`-th memory reference. Raising
    /// it makes fingerprinting cheaper and signatures coarser.
    pub stride_shift: u32,
    /// The calibrated error bound (percent) reported when no ground
    /// truth is available — the engine benchmark's gated operating-point
    /// error, not a guess.
    pub calibrated_error_pct: f64,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            max_clusters: 8,
            warmup_intervals: 2,
            seed: 0x5A3D_1E0F,
            max_iters: 8,
            stride_shift: 2,
            calibrated_error_pct: 2.0,
        }
    }
}

impl SampleConfig {
    /// Folds every field that changes sampled results into a cache key
    /// value, so differently-configured sampled runs never collide in a
    /// result cache.
    pub fn key_fold(&self) -> u64 {
        let mut v = 0xC0FF_EE00u64;
        for part in [
            self.max_clusters as u64,
            self.warmup_intervals as u64,
            self.seed,
            self.max_iters as u64,
            u64::from(self.stride_shift),
            self.calibrated_error_pct.to_bits(),
        ] {
            // SplitMix64-style fold, matching TraceKey::fold's shape.
            v = (v ^ part)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(27);
        }
        v
    }
}
