//! Deterministic seeded k-medoids over interval signatures.
//!
//! Medoids (not centroids) because a cluster's representative must be a
//! *real interval* we can replay — the medoid is the member minimizing
//! total distance to the rest of its cluster. Determinism is contractual:
//! the seed picks the first medoid, every later choice is a greedy argmin
//! / argmax with ties broken toward the lowest interval index, and the
//! refinement loop runs a fixed sweep cap. Same signatures, seed, and
//! config ⇒ same plan, bit for bit (pinned by proptest).

use cc_core::rng::SplitMix64;

use crate::signature::Signature;
use crate::SampleConfig;

/// Candidate/reference cap for the medoid-update step. A cluster larger
/// than this evaluates stride-sampled candidates against stride-sampled
/// references instead of the full O(m²) sweep — still deterministic, and
/// it keeps clustering cost roughly linear in the interval count.
const MEDOID_SWEEP_CAP: usize = 512;

/// The output of the clustering stage: which intervals to replay, and
/// with what extrapolation weight.
#[derive(Clone, Debug, PartialEq)]
pub struct SamplePlan {
    /// Total intervals in the trace.
    pub intervals: usize,
    /// Cluster ordinal → representative (medoid) interval index.
    pub medoids: Vec<usize>,
    /// Interval index → cluster ordinal.
    pub assign: Vec<u32>,
    /// Cluster ordinal → total events across member intervals (the
    /// extrapolation numerator).
    pub weight_events: Vec<u64>,
    /// Cluster ordinal → events in the medoid interval itself (the
    /// extrapolation denominator).
    pub rep_events: Vec<u64>,
    /// Event-weighted mean member→medoid signature distance: 0 when
    /// every interval equals its representative, approaching the
    /// distance ceiling when clusters are incoherent. Feeds the
    /// confidence figure in the extrapolated report.
    pub dispersion: f64,
}

impl SamplePlan {
    /// The degenerate full-replay plan: every interval is its own
    /// representative. Sample rate 1.0 — the bit-identity baseline.
    pub fn full(sigs: &[Signature]) -> SamplePlan {
        SamplePlan {
            intervals: sigs.len(),
            medoids: (0..sigs.len()).collect(),
            assign: (0..sigs.len() as u32).collect(),
            weight_events: sigs.iter().map(|s| s.events).collect(),
            rep_events: sigs.iter().map(|s| s.events).collect(),
            dispersion: 0.0,
        }
    }

    /// Whether this plan replays every interval (no sampling).
    pub fn is_full(&self) -> bool {
        self.medoids.len() == self.intervals
    }

    /// Representatives to replay.
    pub fn representatives(&self) -> usize {
        self.medoids.len()
    }

    /// Member interval indices of cluster `c`, in trace order.
    pub fn members(&self, c: usize) -> impl Iterator<Item = usize> + '_ {
        self.assign
            .iter()
            .enumerate()
            .filter(move |&(_, &a)| a as usize == c)
            .map(|(i, _)| i)
    }
}

/// Clusters interval signatures into `min(cfg.max_clusters, n)` groups.
///
/// Init is k-means++-shaped but fully deterministic: the seed draws the
/// first medoid, then each further medoid is the interval *farthest*
/// from every chosen medoid (greedy max-min, ties to the lowest index) —
/// spreading seeds across the phase space without probabilistic
/// sampling. Refinement alternates assignment and medoid update until a
/// sweep changes nothing or `cfg.max_iters` sweeps have run.
///
/// # Panics
///
/// Panics if `sigs` is empty or `cfg.max_clusters` is zero.
pub fn cluster(sigs: &[Signature], cfg: &SampleConfig) -> SamplePlan {
    assert!(!sigs.is_empty(), "cannot cluster zero intervals");
    assert!(cfg.max_clusters > 0, "need at least one cluster");
    let n = sigs.len();
    let k = cfg.max_clusters.min(n);
    if k == n {
        return SamplePlan::full(sigs);
    }

    // Seeded init: the RNG's only role, so the whole remainder is a pure
    // function of (sigs, first medoid).
    let mut rng = SplitMix64::new(cfg.seed);
    let mut medoids = vec![rng.below(n as u64) as usize];
    // min-distance of each interval to the chosen medoid set.
    let mut min_d: Vec<f64> = sigs.iter().map(|s| s.distance(&sigs[medoids[0]])).collect();
    while medoids.len() < k {
        let mut best = (0usize, -1.0f64);
        for (i, &d) in min_d.iter().enumerate() {
            if d > best.1 && !medoids.contains(&i) {
                best = (i, d);
            }
        }
        medoids.push(best.0);
        for (i, d) in min_d.iter_mut().enumerate() {
            *d = d.min(sigs[i].distance(&sigs[best.0]));
        }
    }
    medoids.sort_unstable();

    let mut assign = vec![0u32; n];
    for _ in 0..cfg.max_iters.max(1) {
        // Assignment: nearest medoid, ties to the lowest cluster ordinal.
        for (i, sig) in sigs.iter().enumerate() {
            let mut best = (0u32, f64::INFINITY);
            for (c, &m) in medoids.iter().enumerate() {
                let d = sig.distance(&sigs[m]);
                if d < best.1 {
                    best = (c as u32, d);
                }
            }
            assign[i] = best.0;
        }
        // Medoid update: per cluster, the member minimizing summed
        // distance to (a deterministic sample of) the other members.
        let mut changed = false;
        for (c, medoid) in medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assign[i] as usize == c).collect();
            if members.is_empty() {
                continue;
            }
            let stride = members.len().div_ceil(MEDOID_SWEEP_CAP);
            let sampled: Vec<usize> = members.iter().copied().step_by(stride).collect();
            let mut best = (*medoid, f64::INFINITY);
            for &cand in &sampled {
                let total: f64 = sampled
                    .iter()
                    .map(|&other| sigs[cand].distance(&sigs[other]))
                    .sum();
                if total < best.1 {
                    best = (cand, total);
                }
            }
            if best.0 != *medoid {
                *medoid = best.0;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Final assignment against the settled medoids, then weights.
    for (i, sig) in sigs.iter().enumerate() {
        let mut best = (0u32, f64::INFINITY);
        for (c, &m) in medoids.iter().enumerate() {
            let d = sig.distance(&sigs[m]);
            if d < best.1 {
                best = (c as u32, d);
            }
        }
        assign[i] = best.0;
    }
    let mut weight_events = vec![0u64; medoids.len()];
    let mut dispersion_num = 0.0f64;
    let mut dispersion_den = 0u64;
    for (i, sig) in sigs.iter().enumerate() {
        let c = assign[i] as usize;
        weight_events[c] += sig.events;
        dispersion_num += sig.events as f64 * sig.distance(&sigs[medoids[c]]);
        dispersion_den += sig.events;
    }
    SamplePlan {
        intervals: n,
        rep_events: medoids.iter().map(|&m| sigs[m].events).collect(),
        medoids,
        assign,
        weight_events,
        dispersion: if dispersion_den == 0 {
            0.0
        } else {
            dispersion_num / dispersion_den as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_sim::{Event, TraceBuf};

    fn sig_of(addrs: &[u64]) -> Signature {
        let mut b = TraceBuf::with_capacity(addrs.len());
        for &a in addrs {
            b.push(Event::load(a, 8));
        }
        Signature::from_bufs(std::slice::from_ref(&b), 0)
    }

    fn two_phase_sigs() -> Vec<Signature> {
        // Eight intervals alternating between two disjoint working sets.
        let near: Vec<u64> = (0..128).map(|i| 0x1000 + i * 64).collect();
        let far: Vec<u64> = (0..128).map(|i| 0x90_0000 + i * 64).collect();
        (0..8)
            .map(|i| sig_of(if i % 2 == 0 { &near } else { &far }))
            .collect()
    }

    #[test]
    fn two_phases_separate_into_two_clusters() {
        let sigs = two_phase_sigs();
        let cfg = SampleConfig {
            max_clusters: 2,
            ..SampleConfig::default()
        };
        let plan = cluster(&sigs, &cfg);
        assert_eq!(plan.representatives(), 2);
        // Every even interval shares a cluster, every odd the other.
        for i in (0..8).step_by(2) {
            assert_eq!(plan.assign[i], plan.assign[0], "interval {i}");
            assert_ne!(plan.assign[i], plan.assign[1], "interval {i}");
        }
        assert_eq!(plan.dispersion, 0.0, "identical members sit on the medoid");
    }

    #[test]
    fn plan_is_deterministic_for_a_fixed_seed() {
        let sigs = two_phase_sigs();
        let cfg = SampleConfig::default();
        assert_eq!(cluster(&sigs, &cfg), cluster(&sigs, &cfg));
    }

    #[test]
    fn cluster_count_clamps_to_interval_count() {
        let sigs = two_phase_sigs();
        let cfg = SampleConfig {
            max_clusters: 100,
            ..SampleConfig::default()
        };
        let plan = cluster(&sigs, &cfg);
        assert!(plan.is_full());
        assert_eq!(plan.medoids, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn weights_cover_every_event_exactly_once() {
        let sigs = two_phase_sigs();
        let cfg = SampleConfig {
            max_clusters: 3,
            ..SampleConfig::default()
        };
        let plan = cluster(&sigs, &cfg);
        let total: u64 = sigs.iter().map(|s| s.events).sum();
        assert_eq!(plan.weight_events.iter().sum::<u64>(), total);
    }
}
