//! Representative replay with warmup windows and the sampler fault
//! plane.
//!
//! A representative interval cannot be replayed from a cold cache: its
//! miss counts would carry the cold-start transient instead of the
//! steady-state behaviour it stands in for. Each representative therefore
//! runs behind a *warmup window* — the immediately preceding interval(s)
//! replay unmeasured on the same fresh replayer, statistics reset
//! (cache and TLB contents persist, exactly the warm-up/steady-state
//! split the figure harness already uses), and only then does the
//! representative run measured.
//!
//! The fault plane mirrors the sharded engine's: a poisoned
//! representative's replay panics inside `catch_unwind`, degrades to a
//! deterministic *neighbouring-interval fallback* (the cluster member
//! whose signature sits closest to the lost medoid, or the adjacent
//! interval for a singleton cluster), and bumps
//! [`SampleDegradation`] counters. A representative whose fallback also
//! fails is *lost*: its cluster contributes nothing and the loss shows
//! up in coverage — degraded output is always visible, never silently
//! wrong.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use cc_sim::{MachineConfig, ShardDegradation, ShardedReplayer, TraceBuf};

use crate::cluster::SamplePlan;
use crate::extrapolate::Counters;
use crate::signature::Signature;

/// Hands out one interval's packed buffers by interval index. The driver
/// calls it for warmup windows too, so implementations must serve any
/// index below the plan's interval count (regenerating from a recorded
/// RNG checkpoint when the interval was not retained in memory).
pub type IntervalProvider<'a> = dyn FnMut(usize) -> Arc<Vec<TraceBuf>> + 'a;

/// Degradation counters for the sampler fault plane.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SampleDegradation {
    /// Representatives whose replay failed and was recovered by a
    /// neighbouring-interval fallback.
    pub fallback_representatives: u64,
    /// Representatives lost outright (fallback failed too, or no
    /// fallback existed); their clusters are absent from the estimate.
    pub lost_representatives: u64,
    /// Trace events whose cluster lost its representative — the mass
    /// missing from coverage.
    pub lost_weight_events: u64,
}

/// One successfully replayed representative.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepOutcome {
    /// Cluster ordinal this outcome speaks for.
    pub cluster: usize,
    /// Interval actually replayed (the medoid, or its fallback).
    pub interval: usize,
    /// Whether a fallback interval stood in for a failed medoid.
    pub fallback: bool,
    /// Measured engine counters for the replayed interval.
    pub counters: Counters,
}

/// The replay stage's output: one slot per cluster (None = lost), plus
/// degradation tallies for both the sampler plane and the underlying
/// shard engine.
#[derive(Clone, Debug, Default)]
pub struct PlanReplay {
    /// Cluster ordinal → outcome (None when lost to faults).
    pub reps: Vec<Option<RepOutcome>>,
    /// Sampler-plane degradation counters.
    pub degradation: SampleDegradation,
    /// Summed shard-engine degradation across every representative's
    /// replayer.
    pub shard_degradation: ShardDegradation,
}

fn merge_shard(acc: &mut ShardDegradation, d: ShardDegradation) {
    acc.worker_panics += d.worker_panics;
    acc.fallback_lanes += d.fallback_lanes;
    acc.lost_lanes += d.lost_lanes;
    acc.repaired_bufs += d.repaired_bufs;
}

/// Replays one interval behind its warmup window on a fresh replayer and
/// returns the measured counters plus the replayer's shard degradation.
fn replay_one(
    machine: &MachineConfig,
    shards: usize,
    interval: usize,
    warmup_intervals: usize,
    provider: &mut IntervalProvider<'_>,
) -> (Counters, ShardDegradation) {
    let mut r = ShardedReplayer::new(*machine, shards);
    let first_warm = interval.saturating_sub(warmup_intervals);
    for w in first_warm..interval {
        let bufs = provider(w);
        let split = r.split(&bufs);
        r.replay(&split);
    }
    r.reset_stats();
    // reset_stats clears measurement counters but the event count is
    // cumulative — snapshot and diff so warmup events never leak into
    // the measured interval's extrapolation weight.
    let warmed = Counters::from_replayer(&r);
    let bufs = provider(interval);
    let split = r.split(&bufs);
    r.replay(&split);
    (Counters::from_replayer(&r).delta(&warmed), r.degradation())
}

/// The sample-rate-1.0 path: every interval replays in trace order on
/// one persistent replayer with no warmup and no resets — this *is* the
/// full sharded replay, chunked by interval, so its counters are
/// bit-identical to replaying the whole trace at once (the proptests pin
/// this). Also the ground-truth engine for error reports.
pub fn replay_full(
    machine: &MachineConfig,
    shards: usize,
    intervals: usize,
    provider: &mut IntervalProvider<'_>,
) -> (Counters, ShardDegradation) {
    let mut r = ShardedReplayer::new(*machine, shards);
    for i in 0..intervals {
        let bufs = provider(i);
        let split = r.split(&bufs);
        r.replay(&split);
    }
    (Counters::from_replayer(&r), r.degradation())
}

/// Replays a *full* plan ([`SamplePlan::full`]) the bit-identical way:
/// one persistent replayer walks every interval in trace order — no
/// warmup, no resets — and each interval's outcome is the counter delta
/// across its replay. Extrapolation weights are exactly 1, so the
/// weighted sum telescopes back to the replayer's own totals: sample
/// rate 1.0 *is* the full sharded replay.
///
/// # Panics
///
/// Panics if `plan` is not a full plan.
pub fn run_plan_full(
    machine: &MachineConfig,
    shards: usize,
    plan: &SamplePlan,
    provider: &mut IntervalProvider<'_>,
) -> PlanReplay {
    assert!(plan.is_full(), "run_plan_full requires a rate-1.0 plan");
    let mut r = ShardedReplayer::new(*machine, shards);
    let mut out = PlanReplay::default();
    let mut before = Counters::default();
    for (c, &interval) in plan.medoids.iter().enumerate() {
        let bufs = provider(interval);
        let split = r.split(&bufs);
        r.replay(&split);
        let after = Counters::from_replayer(&r);
        out.reps.push(Some(RepOutcome {
            cluster: c,
            interval,
            fallback: false,
            counters: after.delta(&before),
        }));
        before = after;
    }
    out.shard_degradation = r.degradation();
    out
}

/// The deterministic stand-in for a failed representative: the cluster
/// member (medoid excluded) whose signature sits closest to the medoid,
/// ties to the lowest interval index; a singleton cluster falls back to
/// the adjacent interval (preceding when one exists), whose phase is the
/// best available guess for its neighbour's.
pub fn fallback_interval(plan: &SamplePlan, sigs: &[Signature], cluster: usize) -> Option<usize> {
    let medoid = plan.medoids[cluster];
    let mut best: Option<(usize, f64)> = None;
    for i in plan.members(cluster).filter(|&i| i != medoid) {
        let d = sigs[i].distance(&sigs[medoid]);
        if best.is_none_or(|(_, bd)| d < bd) {
            best = Some((i, d));
        }
    }
    best.map(|(i, _)| i).or(match medoid {
        0 if plan.intervals > 1 => Some(1),
        0 => None,
        m => Some(m - 1),
    })
}

/// Replays every cluster representative behind its warmup window.
///
/// `poison` holds cluster ordinals whose representative replay is forced
/// to fail (the cc-fault sampler plane); the driver degrades each to its
/// [`fallback_interval`] and counts what happened. Panics — injected or
/// genuine — never escape: they become fallbacks, then losses.
pub fn replay_representatives(
    machine: &MachineConfig,
    shards: usize,
    plan: &SamplePlan,
    sigs: &[Signature],
    warmup_intervals: usize,
    poison: &BTreeSet<usize>,
    provider: &mut IntervalProvider<'_>,
) -> PlanReplay {
    let mut out = PlanReplay {
        reps: Vec::with_capacity(plan.medoids.len()),
        ..PlanReplay::default()
    };
    for (c, &medoid) in plan.medoids.iter().enumerate() {
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            assert!(
                !poison.contains(&c),
                "injected sampler fault: representative {c} poisoned",
            );
            replay_one(machine, shards, medoid, warmup_intervals, provider)
        }));
        let outcome = match attempt {
            Ok((counters, shard)) => {
                merge_shard(&mut out.shard_degradation, shard);
                Some(RepOutcome {
                    cluster: c,
                    interval: medoid,
                    fallback: false,
                    counters,
                })
            }
            Err(_) => {
                let recovered = fallback_interval(plan, sigs, c).and_then(|fb| {
                    catch_unwind(AssertUnwindSafe(|| {
                        replay_one(machine, shards, fb, warmup_intervals, provider)
                    }))
                    .ok()
                    .map(|(counters, shard)| (fb, counters, shard))
                });
                match recovered {
                    Some((fb, counters, shard)) => {
                        out.degradation.fallback_representatives += 1;
                        merge_shard(&mut out.shard_degradation, shard);
                        Some(RepOutcome {
                            cluster: c,
                            interval: fb,
                            fallback: true,
                            counters,
                        })
                    }
                    None => {
                        out.degradation.lost_representatives += 1;
                        out.degradation.lost_weight_events += plan.weight_events[c];
                        None
                    }
                }
            }
        };
        out.reps.push(outcome);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cluster, extrapolate, SampleConfig};
    use cc_sim::{Event, TraceBuf};

    /// A deterministic synthetic workload with two alternating phases.
    fn interval_bufs(i: usize) -> Arc<Vec<TraceBuf>> {
        let base = if i % 2 == 0 { 0x1000u64 } else { 0x40_0000 };
        let mut b = TraceBuf::with_capacity(512);
        let mut bufs = Vec::new();
        for j in 0..512u64 {
            if b.is_full() {
                bufs.push(std::mem::replace(&mut b, TraceBuf::with_capacity(512)));
            }
            b.push(Event::load(base + (j * 24) % 4096, 8));
            b.push_ticks(2);
        }
        bufs.push(b);
        Arc::new(bufs)
    }

    fn sigs(n: usize) -> Vec<Signature> {
        (0..n)
            .map(|i| Signature::from_bufs(&interval_bufs(i), 0))
            .collect()
    }

    #[test]
    fn poisoned_representative_degrades_to_a_counted_fallback() {
        let machine = MachineConfig::ultrasparc_e5000();
        let sigs = sigs(8);
        let cfg = SampleConfig {
            max_clusters: 2,
            ..SampleConfig::default()
        };
        let plan = cluster::cluster(&sigs, &cfg);
        let mut provider = |i: usize| interval_bufs(i);
        let poison: BTreeSet<usize> = [0usize].into_iter().collect();
        // Silence the injected panic's default stderr report, repo-wide
        // fault-test convention.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let replay = replay_representatives(&machine, 2, &plan, &sigs, 1, &poison, &mut provider);
        std::panic::set_hook(prev);
        assert_eq!(replay.degradation.fallback_representatives, 1);
        assert_eq!(replay.degradation.lost_representatives, 0);
        let rep = replay.reps[0].as_ref().expect("fallback recovered");
        assert!(rep.fallback);
        assert_ne!(rep.interval, plan.medoids[0]);
        // The fallback member carries the same phase, so the estimate
        // still covers everything.
        let stats = extrapolate::extrapolate(&plan, &replay, &cfg);
        assert_eq!(stats.coverage_pct, 100.0);
    }

    #[test]
    fn unpoisoned_replay_reports_no_degradation() {
        let machine = MachineConfig::ultrasparc_e5000();
        let sigs = sigs(6);
        let cfg = SampleConfig {
            max_clusters: 3,
            ..SampleConfig::default()
        };
        let plan = cluster::cluster(&sigs, &cfg);
        let mut provider = |i: usize| interval_bufs(i);
        let replay = replay_representatives(
            &machine,
            1,
            &plan,
            &sigs,
            1,
            &BTreeSet::new(),
            &mut provider,
        );
        assert_eq!(replay.degradation, SampleDegradation::default());
        assert!(replay.reps.iter().all(|r| r.is_some()));
    }
}
