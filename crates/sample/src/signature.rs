//! Interval slicing and miss-profile signatures.
//!
//! A signature must be *cheap* — it is computed for every interval of a
//! trace that is precisely too long to replay — and *discriminating
//! enough* that intervals with similar cache behaviour land close
//! together. The default signature is simulation-free: a bucketed
//! histogram of referenced block addresses (the "ref-footprint vector"),
//! plus the write mix. Two intervals that touch the same blocks in the
//! same proportions exercise the caches the same way; two phases that
//! walk different structures produce visibly different footprints. When
//! an attributed replay of the workload exists, its cc-obs
//! [`MissProfile`] per-region miss tallies can be attached to ground the
//! distance in measured misses instead.

use std::collections::BTreeMap;

use cc_obs::{Level, MissProfile};
use cc_sim::TraceBuf;

/// Footprint histogram width. 32 buckets keeps a signature to one cache
/// line of counters while still separating the paper's workloads: a
/// hash-mixed block address is equally likely to land in any bucket, so
/// two intervals over disjoint working sets overlap only by chance.
pub const FOOTPRINT_BUCKETS: usize = 32;

/// SplitMix64 finalizer: the avalanche mix that turns a block number
/// into a uniformly distributed bucket choice.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The per-interval fingerprint the clustering stage runs on.
#[derive(Clone, Debug, PartialEq)]
pub struct Signature {
    /// Memory-referencing entries in the interval (loads, stores,
    /// prefetches), before striding.
    pub refs: u64,
    /// Store entries among [`Signature::refs`].
    pub writes: u64,
    /// Total decoded events in the interval — the extrapolation weight
    /// basis ([`TraceBuf::event_total`] summed over the interval).
    pub events: u64,
    /// Strided footprint histogram over 16KB *granules* (`addr >> 14`,
    /// hash-mixed into buckets). Granule granularity is the
    /// discriminator: a phase's working set spans few granules, so two
    /// phases walking different regions occupy different buckets, while
    /// block-granular hashing would wash both out to uniform noise.
    pub footprint: [u64; FOOTPRINT_BUCKETS],
    /// 64-bit linear-counting sketch of distinct blocks touched (bit
    /// `mix64(addr >> 6) & 63` per strided reference): a cheap
    /// working-set-size and -identity summary compared by Jaccard
    /// distance.
    pub sketch: u64,
    /// Optional measured per-region miss weights (L1 + L2 misses by
    /// region name), attached by [`Signature::attach_regions`].
    pub regions: Option<BTreeMap<String, f64>>,
}

impl Signature {
    /// Fingerprints one interval's packed buffers, examining every
    /// `2^stride_shift`-th memory reference. The stride is deterministic
    /// (reference ordinal, not random), so the same interval always
    /// produces the same signature.
    pub fn from_bufs(bufs: &[TraceBuf], stride_shift: u32) -> Signature {
        let mask = (1u64 << stride_shift) - 1;
        let mut sig = Signature {
            refs: 0,
            writes: 0,
            events: 0,
            footprint: [0; FOOTPRINT_BUCKETS],
            sketch: 0,
            regions: None,
        };
        for buf in bufs {
            sig.events += buf.event_total();
            for r in buf.mem_refs() {
                if sig.refs & mask == 0 {
                    let bucket = (mix64(r.addr >> 14) >> 59) as usize;
                    sig.footprint[bucket] += 1;
                    sig.sketch |= 1 << (mix64(r.addr >> 6) & 63);
                }
                sig.refs += 1;
                sig.writes += u64::from(r.write);
            }
        }
        sig
    }

    /// Attaches measured per-region miss weights from an attributed
    /// replay: L1 and L2 misses summed per region name. Regions with no
    /// misses are omitted on both sides of a comparison, which cancels
    /// out in the normalized distance.
    pub fn attach_regions(&mut self, profile: &MissProfile) {
        let mut weights = BTreeMap::new();
        for level in [Level::L1, Level::L2] {
            for (name, misses) in profile.region_weights(level) {
                *weights.entry(name.to_string()).or_insert(0.0) += misses;
            }
        }
        self.regions = Some(weights);
    }

    /// Normalized distance in `[0, 2]` per component: the L1 distance of
    /// the two footprint frequency vectors, a small write-mix term, and —
    /// when both signatures carry measured region weights — the L1
    /// distance of the region miss distributions averaged in. Symmetric,
    /// zero for identical signatures, and a pure function of the two
    /// signatures (no global state), which is what makes the clustering
    /// stage deterministic.
    pub fn distance(&self, other: &Signature) -> f64 {
        let footprint = vec_l1(&self.footprint, &other.footprint);
        let wmix = (ratio(self.writes, self.refs) - ratio(other.writes, other.refs)).abs();
        let base = footprint + 0.5 * sketch_jaccard(self.sketch, other.sketch) + 0.25 * wmix;
        match (&self.regions, &other.regions) {
            (Some(a), Some(b)) => 0.5 * base + 0.5 * region_l1(a, b),
            _ => base,
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Jaccard distance of two block sketches: `1 − |A∩B| / |A∪B|`, zero
/// when both are empty. Saturated sketches (working sets far past 64
/// blocks) converge to zero distance and the granule footprint carries
/// the discrimination instead.
fn sketch_jaccard(a: u64, b: u64) -> f64 {
    let union = (a | b).count_ones();
    if union == 0 {
        return 0.0;
    }
    1.0 - f64::from((a & b).count_ones()) / f64::from(union)
}

/// L1 distance of two counter histograms after normalizing each to a
/// frequency vector. An empty histogram is distance 2 (maximal) from a
/// non-empty one and 0 from another empty one.
fn vec_l1(a: &[u64; FOOTPRINT_BUCKETS], b: &[u64; FOOTPRINT_BUCKETS]) -> f64 {
    let (ta, tb) = (a.iter().sum::<u64>(), b.iter().sum::<u64>());
    match (ta, tb) {
        (0, 0) => 0.0,
        (0, _) | (_, 0) => 2.0,
        _ => a
            .iter()
            .zip(b)
            .map(|(&x, &y)| (x as f64 / ta as f64 - y as f64 / tb as f64).abs())
            .sum(),
    }
}

/// L1 distance of two name-keyed weight maps after normalization, over
/// the union of names.
fn region_l1(a: &BTreeMap<String, f64>, b: &BTreeMap<String, f64>) -> f64 {
    let (ta, tb) = (a.values().sum::<f64>(), b.values().sum::<f64>());
    match (ta <= 0.0, tb <= 0.0) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return 2.0,
        _ => {}
    }
    let mut d = 0.0;
    for name in a.keys().chain(b.keys().filter(|n| !a.contains_key(*n))) {
        let x = a.get(name).copied().unwrap_or(0.0) / ta;
        let y = b.get(name).copied().unwrap_or(0.0) / tb;
        d += (x - y).abs();
    }
    d
}

/// Slices a packed chunk stream into fixed-size intervals of
/// `chunk_span` consecutive [`TraceBuf`]s (the last interval may be
/// short). Chunk granularity is deliberate: replay, the store, and the
/// splitter all move whole chunks, so interval boundaries on chunk
/// boundaries mean a representative replays *exactly* the entries its
/// signature fingerprinted.
///
/// # Panics
///
/// Panics if `chunk_span` is zero.
pub fn slice_intervals(bufs: &[TraceBuf], chunk_span: usize) -> Vec<std::ops::Range<usize>> {
    assert!(chunk_span > 0, "interval span must be nonzero");
    (0..bufs.len())
        .step_by(chunk_span)
        .map(|start| start..bufs.len().min(start + chunk_span))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_sim::Event;

    fn buf_of(addrs: &[u64]) -> TraceBuf {
        let mut b = TraceBuf::with_capacity(addrs.len().max(1));
        for &a in addrs {
            b.push(Event::load(a, 8));
        }
        b
    }

    #[test]
    fn identical_intervals_have_zero_distance() {
        let a = Signature::from_bufs(&[buf_of(&[0x40, 0x80, 0xC0])], 0);
        let b = Signature::from_bufs(&[buf_of(&[0x40, 0x80, 0xC0])], 0);
        assert_eq!(a.distance(&b), 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn disjoint_working_sets_are_far_apart() {
        let near: Vec<u64> = (0..256).map(|i| 0x1000 + i * 64).collect();
        let far: Vec<u64> = (0..256).map(|i| 0x80_0000 + i * 64).collect();
        let a = Signature::from_bufs(&[buf_of(&near)], 0);
        let b = Signature::from_bufs(&[buf_of(&far)], 0);
        let c = Signature::from_bufs(&[buf_of(&near)], 0);
        assert!(a.distance(&b) > 0.5, "disjoint sets: {}", a.distance(&b));
        assert_eq!(a.distance(&c), 0.0);
    }

    #[test]
    fn striding_counts_every_ref_but_buckets_a_subset() {
        let addrs: Vec<u64> = (0..64).map(|i| i * 64).collect();
        let full = Signature::from_bufs(&[buf_of(&addrs)], 0);
        let strided = Signature::from_bufs(&[buf_of(&addrs)], 2);
        assert_eq!(strided.refs, full.refs);
        assert_eq!(strided.footprint.iter().sum::<u64>() * 4, 64);
    }

    #[test]
    fn event_totals_include_folded_ticks() {
        let mut b = TraceBuf::with_capacity(4);
        b.push(Event::load(0x40, 8));
        b.push_ticks(9);
        let sig = Signature::from_bufs(std::slice::from_ref(&b), 0);
        assert_eq!(sig.events, 10);
        assert_eq!(sig.refs, 1);
    }

    #[test]
    fn slicing_covers_the_stream_exactly_once() {
        let bufs: Vec<TraceBuf> = (0..7).map(|i| buf_of(&[i * 64])).collect();
        let ranges = slice_intervals(&bufs, 3);
        assert_eq!(ranges, vec![0..3, 3..6, 6..7]);
    }
}
