//! Weighted extrapolation and the per-counter error report.
//!
//! Each replayed representative yields exact engine counters for its own
//! interval. Extrapolation scales those by the cluster's share of trace
//! events — `Σ member events / representative events` — and sums across
//! clusters, so a phase that covers half the trace contributes half the
//! estimate regardless of how many representatives it needed. The report
//! carries three honesty fields: *coverage* (what fraction of trace
//! events a surviving representative speaks for — less than 100% only
//! after unrecovered faults), *confidence* (derived from cluster
//! dispersion: how well members resemble the representative that stands
//! in for them), and an *error bound* (the measured per-counter error
//! when ground truth is available, otherwise the calibrated
//! operating-point bound, widened by dispersion).

use cc_sim::ShardedReplayer;

use crate::cluster::SamplePlan;
use crate::replay::PlanReplay;
use crate::SampleConfig;

/// Counters below this ground-truth magnitude are reported but excluded
/// from the headline `max_error_pct`: a counter of a dozen events has no
/// meaningful relative error, and sampling never promises one.
pub const ERROR_GATE_MIN_TRUTH: u64 = 1000;

/// The full set of engine counters a sampled replay estimates — every
/// public total of [`ShardedReplayer`], flattened to named integers so
/// they can be scaled, summed, compared, and serialized without access
/// to `CacheStats`' private fields.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// L1 demand accesses.
    pub l1_accesses: u64,
    /// L1 demand misses.
    pub l1_misses: u64,
    /// L1 evictions.
    pub l1_evictions: u64,
    /// L2 demand accesses.
    pub l2_accesses: u64,
    /// L2 demand misses.
    pub l2_misses: u64,
    /// L2 evictions.
    pub l2_evictions: u64,
    /// TLB probes.
    pub tlb_accesses: u64,
    /// TLB misses.
    pub tlb_misses: u64,
    /// Accumulated memory stall cycles.
    pub memory_cycles: u64,
    /// Instructions retired.
    pub insts: u64,
    /// Branches retired.
    pub branches: u64,
    /// Events replayed.
    pub events: u64,
}

impl Counters {
    /// Snapshots a replayer's totals since its last stats reset.
    pub fn from_replayer(r: &ShardedReplayer) -> Counters {
        Counters {
            l1_accesses: r.l1_stats().accesses(),
            l1_misses: r.l1_stats().misses(),
            l1_evictions: r.l1_stats().evictions(),
            l2_accesses: r.l2_stats().accesses(),
            l2_misses: r.l2_stats().misses(),
            l2_evictions: r.l2_stats().evictions(),
            tlb_accesses: r.tlb_stats().accesses(),
            tlb_misses: r.tlb_stats().misses(),
            memory_cycles: r.memory_cycles(),
            insts: r.insts(),
            branches: r.branches(),
            events: r.events(),
        }
    }

    /// The counters as `(name, value)` pairs in a fixed order — the
    /// iteration basis for error reports and serialization.
    pub fn named(&self) -> [(&'static str, u64); 12] {
        [
            ("l1_accesses", self.l1_accesses),
            ("l1_misses", self.l1_misses),
            ("l1_evictions", self.l1_evictions),
            ("l2_accesses", self.l2_accesses),
            ("l2_misses", self.l2_misses),
            ("l2_evictions", self.l2_evictions),
            ("tlb_accesses", self.tlb_accesses),
            ("tlb_misses", self.tlb_misses),
            ("memory_cycles", self.memory_cycles),
            ("insts", self.insts),
            ("branches", self.branches),
            ("events", self.events),
        ]
    }

    /// Counter-wise difference against an earlier snapshot of the same
    /// monotonically accumulating replayer — the per-interval slice a
    /// persistent full replay attributes to each interval.
    pub fn delta(&self, earlier: &Counters) -> Counters {
        Counters {
            l1_accesses: self.l1_accesses - earlier.l1_accesses,
            l1_misses: self.l1_misses - earlier.l1_misses,
            l1_evictions: self.l1_evictions - earlier.l1_evictions,
            l2_accesses: self.l2_accesses - earlier.l2_accesses,
            l2_misses: self.l2_misses - earlier.l2_misses,
            l2_evictions: self.l2_evictions - earlier.l2_evictions,
            tlb_accesses: self.tlb_accesses - earlier.tlb_accesses,
            tlb_misses: self.tlb_misses - earlier.tlb_misses,
            memory_cycles: self.memory_cycles - earlier.memory_cycles,
            insts: self.insts - earlier.insts,
            branches: self.branches - earlier.branches,
            events: self.events - earlier.events,
        }
    }

    fn scaled_add(&mut self, other: &Counters, scale: f64) {
        // Weight 1 (a cluster exactly covering its representative — every
        // cluster of a full plan) adds exactly: the rate-1.0 bit-identity
        // contract must not hinge on f64 round-tripping.
        let f = |acc: &mut u64, v: u64| {
            *acc += if scale == 1.0 {
                v
            } else {
                (v as f64 * scale).round() as u64
            }
        };
        f(&mut self.l1_accesses, other.l1_accesses);
        f(&mut self.l1_misses, other.l1_misses);
        f(&mut self.l1_evictions, other.l1_evictions);
        f(&mut self.l2_accesses, other.l2_accesses);
        f(&mut self.l2_misses, other.l2_misses);
        f(&mut self.l2_evictions, other.l2_evictions);
        f(&mut self.tlb_accesses, other.tlb_accesses);
        f(&mut self.tlb_misses, other.tlb_misses);
        f(&mut self.memory_cycles, other.memory_cycles);
        f(&mut self.insts, other.insts);
        f(&mut self.branches, other.branches);
        f(&mut self.events, other.events);
    }
}

/// The extrapolated estimate plus its honesty fields.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampledStats {
    /// Event-weighted extrapolated counters.
    pub counters: Counters,
    /// Percent of trace events represented by a surviving replayed
    /// representative. 100 unless representatives were lost to faults.
    pub coverage_pct: f64,
    /// `100 × (1 − dispersion/2)`, clamped to `[0, 100]`: how closely
    /// cluster members resemble the representative standing in for them
    /// (the signature distance ceiling is 2).
    pub confidence_pct: f64,
    /// Claimed maximum relative error on material counters: the
    /// calibrated operating-point bound widened by measured dispersion.
    /// Replaced by the *measured* maximum when ground truth exists.
    pub error_bound_pct: f64,
}

/// Extrapolates replayed representatives to full-trace counter
/// estimates. Lost representatives (fault injection with no usable
/// fallback) subtract their cluster's events from coverage instead of
/// contributing a guess — degraded output is visible, never silently
/// wrong.
pub fn extrapolate(plan: &SamplePlan, replay: &PlanReplay, cfg: &SampleConfig) -> SampledStats {
    let total_events: u64 = plan.weight_events.iter().sum();
    let mut counters = Counters::default();
    let mut covered = 0u64;
    for (c, rep) in replay.reps.iter().enumerate() {
        let Some(out) = rep else { continue };
        // Scale by the cluster's event share over the events the
        // replayed interval actually holds (the fallback interval's own
        // event count when the medoid was poisoned).
        let rep_events = out.counters.events.max(1);
        let scale = plan.weight_events[c] as f64 / rep_events as f64;
        counters.scaled_add(&out.counters, scale);
        covered += plan.weight_events[c];
    }
    let coverage_pct = if total_events == 0 {
        100.0
    } else {
        100.0 * covered as f64 / total_events as f64
    };
    let confidence_pct = (100.0 * (1.0 - plan.dispersion / 2.0)).clamp(0.0, 100.0);
    SampledStats {
        counters,
        coverage_pct,
        confidence_pct,
        error_bound_pct: cfg.calibrated_error_pct * (1.0 + plan.dispersion),
    }
}

/// One counter's estimate against ground truth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CounterError {
    /// Counter name (see [`Counters::named`]).
    pub name: &'static str,
    /// Full-replay value.
    pub truth: u64,
    /// Extrapolated value.
    pub estimate: u64,
    /// `100 × |estimate − truth| / truth` (0 when both are zero, 100
    /// when truth is zero but the estimate is not).
    pub error_pct: f64,
}

/// Per-counter extrapolation error against a full-replay ground truth.
#[derive(Clone, Debug, PartialEq)]
pub struct ErrorReport {
    /// Every counter, in [`Counters::named`] order.
    pub counters: Vec<CounterError>,
    /// Maximum error over *material* counters (ground truth ≥
    /// [`ERROR_GATE_MIN_TRUTH`]) — the figure the engine benchmark gates.
    pub max_error_pct: f64,
    /// Name of the counter behind [`ErrorReport::max_error_pct`].
    pub worst: &'static str,
}

/// Compares an extrapolated estimate against full-replay ground truth.
pub fn error_report(estimate: &Counters, truth: &Counters) -> ErrorReport {
    let mut counters = Vec::with_capacity(12);
    let mut max_error_pct = 0.0f64;
    let mut worst = "none";
    for ((name, est), (_, tru)) in estimate.named().into_iter().zip(truth.named()) {
        let error_pct = match (tru, est) {
            (0, 0) => 0.0,
            (0, _) => 100.0,
            _ => 100.0 * (est.abs_diff(tru) as f64) / tru as f64,
        };
        if tru >= ERROR_GATE_MIN_TRUTH && error_pct > max_error_pct {
            max_error_pct = error_pct;
            worst = name;
        }
        counters.push(CounterError {
            name,
            truth: tru,
            estimate: est,
            error_pct,
        });
    }
    ErrorReport {
        counters,
        max_error_pct,
        worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_report_ignores_immaterial_counters_in_the_headline() {
        let truth = Counters {
            l1_accesses: 100_000,
            l1_misses: 10_000,
            tlb_misses: 10,
            ..Counters::default()
        };
        let est = Counters {
            l1_accesses: 101_000,
            l1_misses: 10_050,
            tlb_misses: 20,
            ..Counters::default()
        };
        let report = error_report(&est, &truth);
        assert_eq!(report.worst, "l1_accesses");
        assert!((report.max_error_pct - 1.0).abs() < 1e-9);
        // The noisy tiny counter is still *reported*.
        let tlb = report
            .counters
            .iter()
            .find(|c| c.name == "tlb_misses")
            .unwrap();
        assert_eq!(tlb.error_pct, 100.0);
    }
}
