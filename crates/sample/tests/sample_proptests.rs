//! Contract properties for the sampled-simulation pipeline:
//!
//! * determinism — the whole pipeline (fingerprint → cluster → replay →
//!   extrapolate) is a pure function of (trace, seed, config);
//! * sample rate 1.0 — a plan in which every interval is its own
//!   representative replays the full trace on one persistent replayer
//!   and must reproduce full-replay engine counters *bit-identically*;
//! * sampled estimates stay plausible — coverage 100 and every weighted
//!   counter within the weights' reach — for arbitrary phase mixes.

use std::collections::BTreeSet;
use std::sync::Arc;

use cc_sample::{cluster, extrapolate, replay_full, replay_representatives};
use cc_sample::{SampleConfig, SamplePlan, Signature};
use cc_sim::{Event, MachineConfig, TraceBuf};
use proptest::prelude::*;

/// Decodes a word list into a phase schedule: each word contributes one
/// interval drawn from one of four synthetic phases (tight loop, wide
/// scan, strided writes, mixed), so arbitrary inputs exercise arbitrary
/// phase sequences.
fn interval_bufs(phase_word: u64, i: usize) -> Arc<Vec<TraceBuf>> {
    let phase = phase_word % 4;
    let mut b = TraceBuf::with_capacity(256);
    let mut bufs = Vec::new();
    let mut push = |b: &mut TraceBuf, bufs: &mut Vec<TraceBuf>, ev: Event| {
        if b.is_full() {
            bufs.push(std::mem::replace(b, TraceBuf::with_capacity(256)));
        }
        b.push(ev);
    };
    for j in 0..300u64 {
        let ev = match phase {
            0 => Event::load(0x1000 + (j * 8) % 512, 8),
            1 => Event::load(0x20_0000 + (j * 320) % 65_536, 8),
            2 => Event::store(0x48_0000 + (j * 64) % 8192, 8),
            _ => {
                if j % 3 == 0 {
                    Event::store(0x1000 + (j * 24) % 2048, 8)
                } else {
                    Event::load(0x60_0000 + (j * 128) % 16_384, 8)
                }
            }
        };
        push(&mut b, &mut bufs, ev);
        if b.can_fold_ticks(2) {
            b.push_ticks(2);
        }
    }
    // A per-interval salt load keeps equal-phase intervals from being
    // literally identical buffers.
    push(
        &mut b,
        &mut bufs,
        Event::load(0x1000 + (i as u64 % 7) * 64, 8),
    );
    bufs.push(b);
    Arc::new(bufs)
}

fn pipeline(
    phases: &[u64],
    cfg: &SampleConfig,
    shards: usize,
) -> (SamplePlan, cc_sample::SampledStats) {
    let sigs: Vec<Signature> = phases
        .iter()
        .enumerate()
        .map(|(i, &w)| Signature::from_bufs(&interval_bufs(w, i), cfg.stride_shift))
        .collect();
    let plan = cluster(&sigs, cfg);
    let machine = MachineConfig::test_tiny();
    let mut provider = |i: usize| interval_bufs(phases[i], i);
    let replay = replay_representatives(
        &machine,
        shards,
        &plan,
        &sigs,
        cfg.warmup_intervals,
        &BTreeSet::new(),
        &mut provider,
    );
    (plan.clone(), extrapolate(&plan, &replay, cfg))
}

proptest! {
    /// Same trace, seed, and config ⇒ identical plan and identical
    /// extrapolated statistics, bit for bit.
    #[test]
    fn pipeline_is_deterministic(
        phases in prop::collection::vec(any::<u64>(), 2..20),
        seed in any::<u64>(),
        clusters in 1usize..6,
    ) {
        let cfg = SampleConfig { seed, max_clusters: clusters, ..SampleConfig::default() };
        let (plan_a, stats_a) = pipeline(&phases, &cfg, 2);
        let (plan_b, stats_b) = pipeline(&phases, &cfg, 2);
        prop_assert_eq!(plan_a, plan_b);
        prop_assert_eq!(stats_a, stats_b);
    }

    /// Sample rate 1.0: a full plan's extrapolation must equal the
    /// persistent full replay exactly — same counters, no rounding, no
    /// warmup artifacts — at any shard count.
    #[test]
    fn rate_one_reproduces_full_replay_bit_identically(
        phases in prop::collection::vec(any::<u64>(), 1..12),
        shards in 1usize..5,
    ) {
        let cfg = SampleConfig::default();
        let sigs: Vec<Signature> = phases
            .iter()
            .enumerate()
            .map(|(i, &w)| Signature::from_bufs(&interval_bufs(w, i), cfg.stride_shift))
            .collect();
        let plan = SamplePlan::full(&sigs);
        let machine = MachineConfig::test_tiny();
        let mut provider = |i: usize| interval_bufs(phases[i], i);
        let (full, _) = replay_full(&machine, shards, phases.len(), &mut provider);
        // The full plan replays through the same persistent-replayer
        // path, so extrapolation weights are all exactly 1.
        let replay = cc_sample::replay::run_plan_full(&machine, shards, &plan, &mut provider);
        let stats = extrapolate(&plan, &replay, &cfg);
        prop_assert_eq!(stats.counters, full);
        prop_assert_eq!(stats.coverage_pct, 100.0);
    }

    /// Sampling an arbitrary phase mix never loses coverage and never
    /// estimates more events than the weights can reach.
    #[test]
    fn estimates_cover_everything_without_faults(
        phases in prop::collection::vec(any::<u64>(), 2..16),
        clusters in 1usize..5,
    ) {
        let cfg = SampleConfig { max_clusters: clusters, ..SampleConfig::default() };
        let (plan, stats) = pipeline(&phases, &cfg, 1);
        prop_assert_eq!(stats.coverage_pct, 100.0);
        let total: u64 = plan.weight_events.iter().sum();
        // Weighted event extrapolation reproduces the exact event total
        // up to per-cluster rounding.
        let slack = plan.representatives() as u64;
        prop_assert!(stats.counters.events.abs_diff(total) <= slack,
            "events {} vs weights {}", stats.counters.events, total);
    }
}
