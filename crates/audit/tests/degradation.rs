//! The degradation oracle: graceful degradation may be *lossy*, but it
//! may never be *silent*. Because the heap snapshot records every
//! allocation's **intended** hint (not the tampered one a fault schedule
//! substituted for placement), the auditor judges the layout against what
//! the program asked for: a degraded allocation either still passes the
//! clustering rules or shows up as a lower co-location score / a
//! CLUSTER-01 finding. On the coloring side, `ccmorph` cannot produce an
//! unflagged bad layout at all — corrupt input is rejected with a typed
//! error before any addresses exist.

use cc_audit::{audit, AuditConfig, AuditInput, Report, Rule};
use cc_core::topology::Topology;
use cc_core::{try_ccmorph, CcMorphParams};
use cc_fault::FaultPlan;
use cc_heap::{Allocator, CcMalloc, HeapFaultSchedule, HeapStats, Strategy, VirtualSpace};
use cc_sim::MachineConfig;

/// A hinted chain churn — each allocation hints at its predecessor, with
/// periodic frees so denied pages have something to scavenge — audited
/// from its final snapshot.
fn audited_chain(machine: &MachineConfig, plan: Option<&FaultPlan>) -> (Report, HeapStats) {
    let mut heap = CcMalloc::with_geometry(64, machine.page_bytes, Strategy::Closest);
    if let Some(p) = plan {
        heap.set_fault_schedule(p.heap_schedule());
    }
    let mut prev = None;
    let mut live = Vec::new();
    for i in 0..48u64 {
        if let Ok(addr) = heap.try_alloc_hint(28, prev) {
            prev = Some(addr);
            live.push(addr);
        }
        if i % 11 == 10 && live.len() > 4 {
            let addr = live.remove(0);
            heap.try_free(addr).expect("freeing a live address");
        }
    }
    let input = AuditInput::from_snapshot(&heap.snapshot(), machine.l2, machine.page_bytes, None);
    (audit(&input, &AuditConfig::default()), heap.stats().clone())
}

fn score(report: &Report) -> f64 {
    report.stats.colocation_score.unwrap_or(0.0)
}

#[test]
fn empty_plan_audits_identically() {
    let machine = MachineConfig::test_tiny();
    let (clean, clean_stats) = audited_chain(&machine, None);
    let empty = FaultPlan::new(0x0DDE);
    assert!(empty.is_empty());
    let (gated, gated_stats) = audited_chain(&machine, Some(&empty));
    assert_eq!(clean_stats, gated_stats);
    assert_eq!(score(&clean), score(&gated));
    assert_eq!(clean.findings.len(), gated.findings.len());
}

#[test]
fn seeded_degradation_drops_the_score() {
    let machine = MachineConfig::test_tiny();
    let (clean, clean_stats) = audited_chain(&machine, None);
    let clean_score = score(&clean);

    let mut seeds_with_degradation = 0;
    for seed in 0..12u64 {
        let plan = FaultPlan::new(seed).heap_faults(8, 40);
        let (faulted, stats) = audited_chain(&machine, Some(&plan));
        if stats == clean_stats {
            assert_eq!(score(&faulted), clean_score);
            continue;
        }
        seeds_with_degradation += 1;
        assert!(
            stats.degraded_hints() > clean_stats.degraded_hints(),
            "seed {seed:#x}: schedule fired but degraded nothing: {stats:?}"
        );
        // The tampered placements split pairs the clean layout co-located;
        // the score judges against recorded intent, so it must drop.
        assert!(
            score(&faulted) < clean_score - 1e-12,
            "seed {seed:#x}: {} degraded placement(s) left the score at {} (clean {clean_score})",
            stats.degraded_hints(),
            score(&faulted),
        );
    }
    assert!(
        seeds_with_degradation >= 8,
        "only {seeds_with_degradation} of 12 seeds degraded anything — the oracle is vacuous"
    );
}

/// Two chains allocated in alternation — the allocation order the paper's
/// hints exist to overcome. Under `NewBlock` each chain gets its own
/// reserved cache blocks, so the *hinted* layout passes CLUSTER-01 even
/// though some placements inevitably degrade at page boundaries. Dropping
/// every hint collapses the layout back to allocation order (each block
/// holds one element of each chain), and the auditor must say so.
fn interleaved_chains(
    machine: &MachineConfig,
    schedule: Option<HeapFaultSchedule>,
) -> (Report, HeapStats) {
    let mut heap = CcMalloc::with_geometry(64, machine.page_bytes, Strategy::NewBlock);
    if let Some(s) = schedule {
        heap.set_fault_schedule(s);
    }
    let mut prev = [None, None];
    for i in 0..48usize {
        let c = i % 2;
        let addr = heap
            .try_alloc_hint(20, prev[c])
            .expect("no denials are armed");
        prev[c] = Some(addr);
    }
    let input = AuditInput::from_snapshot(&heap.snapshot(), machine.l2, machine.page_bytes, None);
    (audit(&input, &AuditConfig::default()), heap.stats().clone())
}

#[test]
fn dropped_hints_on_interleaved_chains_are_flagged() {
    let machine = MachineConfig::test_tiny();

    // Pass side: the hinted run degrades some placements (page-boundary
    // fallbacks are part of normal operation) yet still audits clean —
    // degradation the layout absorbs needs no flag.
    let (clean, clean_stats) = interleaved_chains(&machine, None);
    assert!(clean_stats.degraded_hints() > 0);
    assert!(
        clean.of_rule(Rule::Cluster01).is_empty(),
        "the hinted interleaved layout should pass CLUSTER-01:\n{}",
        clean.to_text()
    );

    // Flag side: dropping every hint degrades every placement, and the
    // auditor — judging against the hints the snapshot recorded — must
    // report the collapse rather than stay silent.
    let drop_all = HeapFaultSchedule {
        drop_hint: (0..48).collect(),
        ..HeapFaultSchedule::empty()
    };
    let (dropped, dropped_stats) = interleaved_chains(&machine, Some(drop_all));
    assert_eq!(
        dropped_stats.degraded_hints(),
        46,
        "every hinted allocation should have degraded"
    );
    assert!(score(&dropped) < score(&clean) - 1e-12);
    let flagged = dropped.of_rule(Rule::Cluster01);
    assert!(
        !flagged.is_empty(),
        "46 degraded placements collapsed the layout (score {}) without a CLUSTER-01 finding",
        score(&dropped),
    );
}

/// A small adjacency-list tree for the `ccmorph` half of the oracle.
struct VecTree {
    kids: Vec<Vec<usize>>,
}

impl Topology for VecTree {
    fn node_count(&self) -> usize {
        self.kids.len()
    }
    fn root(&self) -> Option<usize> {
        (!self.kids.is_empty()).then_some(0)
    }
    fn max_kids(&self) -> usize {
        2
    }
    fn child(&self, node: usize, i: usize) -> Option<usize> {
        self.kids[node].get(i).copied()
    }
}

fn binary_tree(n: usize) -> VecTree {
    let kids = (0..n)
        .map(|i| {
            [2 * i + 1, 2 * i + 2]
                .into_iter()
                .filter(|&c| c < n)
                .collect()
        })
        .collect();
    VecTree { kids }
}

#[test]
fn ccmorph_layouts_pass_color01_or_never_exist() {
    let machine = MachineConfig::test_tiny();
    let params = CcMorphParams::clustering_and_coloring(&machine, 16);

    // The succeed side: a valid tree morphs, and the layout it produces
    // audits clean on the coloring rule the figure binaries gate on.
    let tree = binary_tree(255);
    let mut vspace = VirtualSpace::new(machine.page_bytes);
    let layout = try_ccmorph(&tree, &mut vspace, &params).expect("valid tree morphs");
    let report = audit(
        &AuditInput::from_tree_layout(&tree, &layout, &params),
        &AuditConfig::default(),
    );
    assert!(
        report.of_rule(Rule::Color01).is_empty(),
        "a successful morph produced a layout COLOR-01 rejects:\n{}",
        report.to_text()
    );

    // The fail side: corrupt topology cannot degrade into an unflagged
    // layout — `try_ccmorph` refuses it before any addresses exist, so
    // there is nothing for the auditor to miss.
    let mut cyclic = binary_tree(255);
    cyclic.kids[200] = vec![0];
    let before = vspace.span_bytes();
    assert!(try_ccmorph(&cyclic, &mut vspace, &params).is_err());
    assert_eq!(
        vspace.span_bytes(),
        before,
        "a rejected morph must leave the address space untouched"
    );
}
