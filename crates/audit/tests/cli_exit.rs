//! Pins the `cc-audit` CLI exit-code convention: 0 = no findings,
//! 1 = findings present, 2 = input error. `cc-lint` shares the same
//! convention (tested in `cc-lint/tests/cli_exit.rs`).

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cc-audit"))
        .args(args)
        .output()
        .expect("cc-audit runs")
}

#[test]
fn clean_scenario_exits_zero() {
    let out = run(&["--scenario", "ccmorph-tree", "--nodes", "1023"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn bad_layout_scenario_exits_one() {
    let out = run(&["--scenario", "malloc-tree", "--nodes", "1023"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(
        !out.stdout.is_empty(),
        "findings are reported before exiting 1"
    );
}

#[test]
fn unknown_scenario_exits_two() {
    let out = run(&["--scenario", "no-such-scenario"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown scenario"), "{stderr}");
}

#[test]
fn bad_nodes_exits_two() {
    let out = run(&["--nodes", "0"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = run(&["--nodes", "not-a-number"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn unknown_argument_exits_two() {
    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
