//! What the auditor analyses: items with addresses and heat, affinity
//! pairs, cache geometry, and the intended coloring.
//!
//! Inputs come from three sources, matching the tentpole architecture:
//!
//! 1. a heap [`LayoutSnapshot`](cc_heap::LayoutSnapshot) (items +
//!    hint-derived affinity pairs) — see [`AuditInput::from_snapshot`];
//! 2. a `ccmorph` [`Layout`](cc_core::Layout) over a
//!    [`Topology`](cc_core::Topology) (items + structural affinity
//!    pairs + depth-derived heat) — see [`AuditInput::from_tree_layout`];
//! 3. an [`AffinityTrace`](cc_sim::AffinityTrace) recorded from a real
//!    run, which can replace or refine the static heat — see
//!    [`AuditInput::apply_trace`].

use cc_core::affinity;
use cc_core::ccmorph::{CcMorphParams, Layout};
use cc_core::cluster::ClusterKind;
use cc_core::Topology;
use cc_sim::{AffinityTrace, CacheGeometry};

/// One analysed object: an allocation or a structure element.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditItem {
    /// Human-readable identity in diagnostics ("node 42", "alloc 17").
    pub label: String,
    /// Start address.
    pub addr: u64,
    /// Size in bytes.
    pub size: u64,
    /// Relative access frequency; only the *ordering* matters. The tree
    /// constructors use `-(depth)` — under random root-to-leaf searches,
    /// expected touches fall geometrically with depth. `0.0` everywhere
    /// means "no heat information" and disables the heat-based rules.
    pub heat: f64,
}

/// The coloring discipline a layout claims to follow: the first
/// `hot_bytes` of every `way_bytes` window of the address space map to
/// the reserved hot sets (paper Figure 2). Valid for regions based at a
/// way-aligned address — which [`cc_core::ColoredSpace`] guarantees —
/// and, for baseline layouts, expresses where the machine *wants* hot
/// data even though the allocator never promised it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColorSpec {
    /// The conflict period: `sets × block_bytes`.
    pub way_bytes: u64,
    /// Hot bytes at the start of each way window (`p × block_bytes`,
    /// page-rounded).
    pub hot_bytes: u64,
    /// Cache associativity: the hot region repeats conflict-free in
    /// `assoc` windows, so total hot capacity is `hot_bytes × assoc`.
    pub assoc: u64,
}

impl ColorSpec {
    /// The spec a [`cc_core::ColoredSpace`] with these parameters
    /// enforces, using the same page-rounding of the hot fraction.
    pub fn new(geometry: CacheGeometry, page_bytes: u64, hot_fraction: f64) -> Self {
        ColorSpec {
            way_bytes: geometry.way_bytes(),
            hot_bytes: cc_core::color::hot_bytes_per_way(geometry, page_bytes, hot_fraction),
            assoc: geometry.assoc(),
        }
    }

    /// The spec implied by `ccmorph` parameters; `None` when the params
    /// don't color.
    pub fn from_morph_params(params: &CcMorphParams) -> Option<Self> {
        params
            .color
            .map(|cfg| Self::new(params.cache, params.page_bytes, cfg.hot_fraction))
    }

    /// Whether `addr` falls in a hot slot.
    pub fn is_hot_slot(&self, addr: u64) -> bool {
        addr % self.way_bytes < self.hot_bytes
    }

    /// Total conflict-free hot capacity in bytes.
    pub fn hot_capacity(&self) -> u64 {
        self.hot_bytes * self.assoc
    }
}

/// Which structural pairs count as high-affinity for a tree layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AffinityKind {
    /// `(parent, child)` edges — what subtree clustering and
    /// hint-per-child `ccmalloc` allocation co-locate. Right for search
    /// workloads.
    ParentChild,
    /// Consecutive preorder pairs — what a depth-first chain layout
    /// co-locates. Right for sweep/traversal workloads.
    PreorderChain,
}

impl AffinityKind {
    /// The kind matching a clustering discipline.
    pub fn for_cluster_kind(kind: ClusterKind) -> Self {
        match kind {
            ClusterKind::SubtreeBfs => AffinityKind::ParentChild,
            ClusterKind::DepthFirstChain => AffinityKind::PreorderChain,
        }
    }
}

/// Everything one audit run analyses.
#[derive(Clone, Debug)]
pub struct AuditInput {
    /// The analysed objects.
    pub items: Vec<AuditItem>,
    /// High-affinity pairs as indices into `items`.
    pub pairs: Vec<(usize, usize)>,
    /// Cache geometry being laid out against (the L2, as in the paper).
    pub geometry: CacheGeometry,
    /// Virtual-memory page size.
    pub page_bytes: u64,
    /// The coloring discipline to check, if any.
    pub color: Option<ColorSpec>,
}

impl AuditInput {
    /// Builds the input for a tree whose node addresses come from
    /// `addr_of` (returning `None` for nodes that were never laid out).
    /// Heat is `-(depth)`; affinity pairs follow `kind`.
    pub fn from_tree_addrs<T, F>(
        topo: &T,
        addr_of: F,
        elem_bytes: u64,
        geometry: CacheGeometry,
        page_bytes: u64,
        color: Option<ColorSpec>,
        kind: AffinityKind,
    ) -> Self
    where
        T: Topology,
        F: Fn(usize) -> Option<u64>,
    {
        let depths = affinity::node_depths(topo);
        let mut item_of_node = vec![usize::MAX; topo.node_count()];
        let mut items = Vec::new();
        for node in 0..topo.node_count() {
            let Some(addr) = addr_of(node) else { continue };
            if depths[node] == usize::MAX {
                continue; // unreachable: no meaningful heat or affinity
            }
            item_of_node[node] = items.len();
            items.push(AuditItem {
                label: format!("node {node}"),
                addr,
                size: elem_bytes,
                heat: -(depths[node] as f64),
            });
        }
        let raw_pairs = match kind {
            AffinityKind::ParentChild => affinity::parent_child_pairs(topo),
            AffinityKind::PreorderChain => affinity::preorder_chain_pairs(topo),
        };
        let pairs = raw_pairs
            .into_iter()
            .filter_map(|(a, b)| {
                let (ia, ib) = (item_of_node[a], item_of_node[b]);
                (ia != usize::MAX && ib != usize::MAX).then_some((ia, ib))
            })
            .collect();
        AuditInput {
            items,
            pairs,
            geometry,
            page_bytes,
            color,
        }
    }

    /// Builds the input for a `ccmorph`-produced [`Layout`], deriving the
    /// color spec and affinity kind from the morph parameters themselves —
    /// the layout is audited against exactly what it claimed to do.
    pub fn from_tree_layout<T: Topology>(
        topo: &T,
        layout: &Layout,
        params: &CcMorphParams,
    ) -> Self {
        Self::from_tree_addrs(
            topo,
            |n| layout.try_addr_of(n),
            params.elem_bytes,
            params.cache,
            params.page_bytes,
            ColorSpec::from_morph_params(params),
            AffinityKind::for_cluster_kind(params.cluster_kind),
        )
    }

    /// Builds the input from a heap snapshot: one item per live
    /// allocation, affinity pairs from the recorded hints (hinted-at
    /// allocation → new allocation). Heat starts at `0.0` (unknown) —
    /// chain [`Self::apply_trace`] to supply it from a recorded run.
    pub fn from_snapshot(
        snapshot: &cc_heap::LayoutSnapshot,
        geometry: CacheGeometry,
        page_bytes: u64,
        color: Option<ColorSpec>,
    ) -> Self {
        let records = snapshot.records();
        let items = records
            .iter()
            .map(|r| AuditItem {
                label: format!("alloc {}", r.id),
                addr: r.addr,
                size: r.size,
                heat: 0.0,
            })
            .collect();
        let index_of_addr = |addr: u64| {
            records
                .binary_search_by(|r| {
                    use std::cmp::Ordering;
                    if r.contains(addr) {
                        Ordering::Equal
                    } else if r.addr > addr {
                        Ordering::Greater
                    } else {
                        Ordering::Less
                    }
                })
                .ok()
        };
        let pairs = records
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                let target = index_of_addr(r.hint?)?;
                (target != i).then_some((target, i))
            })
            .collect();
        AuditInput {
            items,
            pairs,
            geometry,
            page_bytes,
            color,
        }
    }

    /// Replaces every item's heat with its observed access count from a
    /// recorded trace (addresses inside an item accumulate onto it).
    /// Items the trace never touched get heat `0.0`.
    pub fn apply_trace(&mut self, trace: &AffinityTrace) {
        // Items are not necessarily sorted; build a sorted view once.
        let mut order: Vec<usize> = (0..self.items.len()).collect();
        order.sort_by_key(|&i| self.items[i].addr);
        for item in &mut self.items {
            item.heat = 0.0;
        }
        for (&addr, &count) in trace.counts() {
            let pos = order.partition_point(|&i| self.items[i].addr <= addr);
            let Some(&idx) = pos.checked_sub(1).and_then(|p| order.get(p)) else {
                continue;
            };
            let item = &mut self.items[idx];
            if addr < item.addr + item.size {
                item.heat += count as f64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_core::topology::VecTree;
    use cc_sim::event::EventSink;

    fn geometry() -> CacheGeometry {
        CacheGeometry::with_capacity(1 << 20, 64, 1)
    }

    #[test]
    fn color_spec_matches_colored_space_boundary() {
        let spec = ColorSpec::new(geometry(), 8192, 0.5);
        assert_eq!(spec.way_bytes, 1 << 20);
        assert_eq!(spec.hot_bytes, 512 * 1024);
        assert!(spec.is_hot_slot(0));
        assert!(spec.is_hot_slot(512 * 1024 - 1));
        assert!(!spec.is_hot_slot(512 * 1024));
        assert!(spec.is_hot_slot(1 << 20));
    }

    #[test]
    fn tree_input_sets_depth_heat_and_edges() {
        let t = VecTree::complete_binary(7);
        let input = AuditInput::from_tree_addrs(
            &t,
            |n| Some(0x1000 + n as u64 * 32),
            20,
            geometry(),
            8192,
            None,
            AffinityKind::ParentChild,
        );
        assert_eq!(input.items.len(), 7);
        assert_eq!(input.pairs.len(), 6);
        assert_eq!(input.items[0].heat, 0.0);
        assert_eq!(input.items[3].heat, -2.0);
    }

    #[test]
    fn snapshot_input_links_hints() {
        use cc_heap::Allocator;
        let mut heap = cc_heap::Malloc::new(8192);
        let a = heap.alloc(20);
        let _b = heap.alloc_hint(20, Some(a));
        let input = AuditInput::from_snapshot(&heap.snapshot(), geometry(), 8192, None);
        assert_eq!(input.items.len(), 2);
        assert_eq!(input.pairs, vec![(0, 1)]);
    }

    #[test]
    fn trace_overrides_heat() {
        let t = VecTree::list(3);
        let mut input = AuditInput::from_tree_addrs(
            &t,
            |n| Some(0x1000 + n as u64 * 32),
            20,
            geometry(),
            8192,
            None,
            AffinityKind::PreorderChain,
        );
        let mut trace = AffinityTrace::new();
        trace.load(0x1000, 8);
        trace.load(0x1008, 8); // same item, different word
        trace.load(0x1020, 8);
        input.apply_trace(&trace);
        assert_eq!(input.items[0].heat, 2.0);
        assert_eq!(input.items[1].heat, 1.0);
        assert_eq!(input.items[2].heat, 0.0);
    }
}
