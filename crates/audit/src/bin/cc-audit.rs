//! `cc-audit` — audit a simulated cache-conscious layout.
//!
//! ```text
//! cc-audit [--json] [--scenario NAME] [--nodes N]
//! cc-audit --list
//! ```
//!
//! Builds the named scenario (default: every scenario in turn), runs the
//! six layout rules over it, and prints the report as text or stable
//! JSON. Exit status: 0 if every audited layout is free of
//! error-severity findings, 1 otherwise, 2 on usage errors.

use cc_audit::{audit, scenarios, AuditConfig};

struct Options {
    json: bool,
    scenario: Option<String>,
    nodes: usize,
}

const DEFAULT_NODES: usize = (1 << 14) - 1;

fn usage_text() -> String {
    format!(
        "usage: cc-audit [--json] [--scenario NAME] [--nodes N]\n\
         \x20      cc-audit --list\n\
         scenarios: {}",
        scenarios::ALL.join(", ")
    )
}

fn usage() -> ! {
    eprintln!("{}", usage_text());
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        json: false,
        scenario: None,
        nodes: DEFAULT_NODES,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--list" => {
                for name in scenarios::ALL {
                    println!("{name}: {}", scenarios::describe(name).unwrap());
                }
                std::process::exit(0);
            }
            "--scenario" => match args.next() {
                Some(name) if scenarios::describe(&name).is_some() => {
                    opts.scenario = Some(name);
                }
                Some(name) => {
                    eprintln!("cc-audit: unknown scenario '{name}'");
                    usage();
                }
                None => usage(),
            },
            "--nodes" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => opts.nodes = n,
                _ => usage(),
            },
            "--help" | "-h" => {
                println!("{}", usage_text());
                std::process::exit(0);
            }
            other => {
                eprintln!("cc-audit: unknown argument '{other}'");
                usage();
            }
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    let config = AuditConfig::default();
    let names: Vec<&str> = match &opts.scenario {
        Some(name) => vec![name.as_str()],
        None => scenarios::ALL.to_vec(),
    };
    let mut errors = 0;
    for (i, name) in names.iter().enumerate() {
        let input = scenarios::build(name, opts.nodes).expect("validated scenario name");
        let report = audit(&input, &config);
        errors += report.error_count();
        if opts.json {
            print!("{}", report.to_json());
        } else {
            if i > 0 {
                println!();
            }
            println!("== {name} ({} elements) ==", opts.nodes);
            print!("{}", report.to_text());
        }
    }
    std::process::exit(if errors == 0 { 0 } else { 1 });
}
