//! `cc-audit` — audit a simulated cache-conscious layout.
//!
//! ```text
//! cc-audit [--json] [--scenario NAME] [--nodes N]
//! cc-audit --list
//! ```
//!
//! Builds the named scenario (default: every scenario in turn), runs the
//! layout rules over it, and prints the report as text or stable JSON.
//!
//! Exit status follows the workspace CLI convention (shared with
//! `cc-lint`):
//!
//! * **0** — every audited layout is free of findings,
//! * **1** — findings present,
//! * **2** — input error (unknown scenario or argument, bad `--nodes`,
//!   scenario construction failure).

use cc_audit::{audit, scenarios, AuditConfig};
use std::process::ExitCode;

struct Options {
    json: bool,
    scenario: Option<String>,
    nodes: usize,
}

const DEFAULT_NODES: usize = (1 << 14) - 1;

fn usage_text() -> String {
    format!(
        "usage: cc-audit [--json] [--scenario NAME] [--nodes N]\n\
         \x20      cc-audit --list\n\
         scenarios: {}\n\
         exit: 0 = no findings, 1 = findings, 2 = input error",
        scenarios::ALL.join(", ")
    )
}

fn input_error(msg: &str) -> ExitCode {
    eprintln!("cc-audit: {msg}");
    eprintln!("{}", usage_text());
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        scenario: None,
        nodes: DEFAULT_NODES,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--list" => {
                for name in scenarios::ALL {
                    println!("{name}: {}", scenarios::describe(name).unwrap());
                }
                std::process::exit(0);
            }
            "--scenario" => match args.next() {
                Some(name) if scenarios::describe(&name).is_some() => {
                    opts.scenario = Some(name);
                }
                Some(name) => return Err(format!("unknown scenario '{name}'")),
                None => return Err("--scenario needs a name".to_string()),
            },
            "--nodes" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => opts.nodes = n,
                _ => return Err("--nodes needs a positive number".to_string()),
            },
            "--help" | "-h" => {
                println!("{}", usage_text());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => return input_error(&msg),
    };
    let config = AuditConfig::default();
    let names: Vec<&str> = match &opts.scenario {
        Some(name) => vec![name.as_str()],
        None => scenarios::ALL.to_vec(),
    };
    let mut findings = 0;
    for (i, name) in names.iter().enumerate() {
        let Some(input) = scenarios::build(name, opts.nodes) else {
            return input_error(&format!(
                "scenario '{name}' failed to build with {} nodes",
                opts.nodes
            ));
        };
        let report = audit(&input, &config);
        findings += report.findings.len();
        if opts.json {
            print!("{}", report.to_json());
        } else {
            if i > 0 {
                println!();
            }
            println!("== {name} ({} elements) ==", opts.nodes);
            print!("{}", report.to_text());
        }
    }
    if findings == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
