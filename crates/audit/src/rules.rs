//! The six audit rules and the entry point, [`audit`].
//!
//! Each rule checks one concrete consequence of the paper's placement
//! techniques against an actual layout:
//!
//! | rule       | claim it audits                                           |
//! |------------|-----------------------------------------------------------|
//! | CLUSTER-01 | high-affinity pairs share cache blocks (Section 2.1)      |
//! | CLUSTER-02 | block-mates are related — no wasted fetches               |
//! | COLOR-01   | frequently accessed elements map to hot sets (Section 2.2)|
//! | COLOR-02   | the hot partition is not polluted by cold elements        |
//! | SET-01     | no set is owed more hot bytes than its associativity      |
//! | ALIGN-01   | sub-block elements do not straddle block boundaries       |

use std::collections::HashMap;

use crate::input::AuditInput;
use crate::report::{AuditStats, Finding, Report, Rule};

/// Thresholds and reporting limits. The defaults match the acceptance
/// oracles: a `ccmorph`-reorganized tree passes every rule, the same tree
/// laid out by a layout-oblivious `Malloc` trips CLUSTER-01 and (when a
/// coloring is intended) COLOR-01.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AuditConfig {
    /// CLUSTER-01 fires when the achievability-normalized co-location
    /// score falls below this (1.0 = every block holds as many affine
    /// pairs as its capacity allows).
    pub min_colocation_score: f64,
    /// CLUSTER-02 fires when more than this fraction of multi-item blocks
    /// contain no affine pair at all.
    pub max_unrelated_block_fraction: f64,
    /// Dead band, in heat units, around the hot/cold boundary. Items
    /// within the band are neither certainly hot nor certainly cold, so
    /// the color rules stay quiet about them. With depth-derived heat
    /// (one unit per tree level) the default forgives boundary levels
    /// that clustering granularity may place either way.
    pub heat_tolerance: f64,
    /// At most this many offending addresses are attached to a finding;
    /// the message reports the true count.
    pub max_reported_addrs: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            min_colocation_score: 0.75,
            max_unrelated_block_fraction: 0.4,
            heat_tolerance: 2.0,
            max_reported_addrs: 8,
        }
    }
}

/// Runs every rule over the input and returns the normalized report.
///
/// The audit is purely static: it looks at where items *are*, never at a
/// workload execution (heat may come from a recorded trace, but the rules
/// only compare addresses against geometry).
pub fn audit(input: &AuditInput, config: &AuditConfig) -> Report {
    let mut report = Report {
        findings: Vec::new(),
        stats: AuditStats {
            items: input.items.len(),
            pairs: input.pairs.len(),
            ..AuditStats::default()
        },
    };
    let heat = HeatPartition::compute(input, config);
    check_cluster_01(input, config, &mut report);
    check_cluster_02(input, config, &mut report);
    check_color_01(input, config, &heat, &mut report);
    check_color_02(input, config, &heat, &mut report);
    check_set_01(input, config, &heat, &mut report);
    check_align_01(input, config, &mut report);
    report.normalize();
    report
}

/// Which items must be hot and which must be cold, derived from the heat
/// ordering and the layout's hot capacity.
///
/// Sort items by heat (descending) and fill the hot capacity; the heat at
/// the point the capacity runs out is the boundary. An item is *certainly
/// hot* if its heat clears the boundary by more than the tolerance — any
/// correct coloring has room for it among the hot sets — and *certainly
/// cold* if it falls short by more than the tolerance. When every item
/// fits, nothing is certainly cold; when heat is uniform (e.g. all zero:
/// no information), nothing is certain in either direction and the
/// heat-based rules are vacuously quiet.
struct HeatPartition {
    boundary: f64,
    tolerance: f64,
}

impl HeatPartition {
    fn compute(input: &AuditInput, config: &AuditConfig) -> Self {
        // Without an intended coloring the budget is the whole cache:
        // SET-01 still wants to know which items compete to be resident.
        let capacity = input
            .color
            .map_or(input.geometry.capacity_bytes(), |c| c.hot_capacity());
        let mut order: Vec<usize> = (0..input.items.len()).collect();
        order.sort_by(|&a, &b| {
            let (ia, ib) = (&input.items[a], &input.items[b]);
            ib.heat
                .partial_cmp(&ia.heat)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ia.addr.cmp(&ib.addr))
        });
        // Fill in *block* granularity: a layout places whole cache blocks
        // in the hot region, so what "fits" is distinct blocks, not raw
        // item bytes. (Items the hypothetical ideal layout would co-locate
        // already share blocks here, so counting their blocks once is the
        // honest measure.)
        let mut boundary = f64::NEG_INFINITY;
        let mut blocks = std::collections::HashSet::new();
        for &i in &order {
            let item = &input.items[i];
            blocks.extend(input.geometry.blocks_touched(item.addr, item.size));
            if blocks.len() as u64 * input.geometry.block_bytes() > capacity {
                boundary = item.heat;
                break;
            }
        }
        HeatPartition {
            boundary,
            tolerance: config.heat_tolerance,
        }
    }

    fn certainly_hot(&self, heat: f64) -> bool {
        heat > self.boundary + self.tolerance
    }

    fn certainly_cold(&self, heat: f64) -> bool {
        heat + self.tolerance < self.boundary
    }
}

/// CLUSTER-01: the layout co-locates the high-affinity pairs it was given.
///
/// A block holding `s` items can co-locate at most `s − 1` pairs of a
/// spanning structure, so with `k = ⌊b/e⌋` items per block the best any
/// layout can do for `n` linked items is `n − ⌈n/k⌉` co-located pairs.
/// The score is achieved/achievable; `ccmorph` subtree clustering scores
/// 1.0 on the pairs it optimizes for, a layout-oblivious sequential
/// allocation of a tree scores ≈ 0.4.
fn check_cluster_01(input: &AuditInput, config: &AuditConfig, report: &mut Report) {
    if input.pairs.is_empty() {
        return;
    }
    let mut linked = vec![false; input.items.len()];
    for &(a, b) in &input.pairs {
        linked[a] = true;
        linked[b] = true;
    }
    let n = linked.iter().filter(|&&l| l).count() as u64;
    let max_elem = input
        .items
        .iter()
        .enumerate()
        .filter(|(i, _)| linked[*i])
        .map(|(_, item)| item.size)
        .max()
        .unwrap_or(1);
    let k = input.geometry.elems_per_block(max_elem);
    let achievable = n.saturating_sub(n.div_ceil(k));
    if achievable == 0 {
        return; // elements don't fit two to a block; nothing to cluster
    }
    let block = |i: usize| input.geometry.block_of(input.items[i].addr);
    let mut split = Vec::new();
    let mut colocated = 0u64;
    for &(a, b) in &input.pairs {
        if block(a) == block(b) {
            colocated += 1;
        } else {
            split.push((a, b));
        }
    }
    let score = (colocated as f64 / achievable as f64).min(1.0);
    report.stats.colocation_score = Some(score);
    if score >= config.min_colocation_score {
        return;
    }
    let mut addrs = Vec::new();
    let mut examples = Vec::new();
    for &(a, b) in split.iter().take(config.max_reported_addrs / 2) {
        addrs.push(input.items[a].addr);
        addrs.push(input.items[b].addr);
        if examples.len() < 2 {
            examples.push(format!(
                "{} | {}",
                input.items[a].label, input.items[b].label
            ));
        }
    }
    report.findings.push(Finding::new(
        Rule::Cluster01,
        format!(
            "co-location score {score:.2} below {:.2}: only {colocated} of {achievable} \
             achievable high-affinity pairs share a cache block \
             (k = {k} items/block; {} split pair(s), e.g. {})",
            config.min_colocation_score,
            split.len(),
            examples.join("; "),
        ),
        addrs,
    ));
}

/// CLUSTER-02: blocks holding several items hold *related* items. A
/// multi-item block with no internal affinity edge spends its fetch on
/// data the access that missed did not want. Only blocks containing at
/// least one item with known affinity are judged — a block of items the
/// input claims nothing about (no pairs) is unknown, not wrong.
fn check_cluster_02(input: &AuditInput, config: &AuditConfig, report: &mut Report) {
    if input.pairs.is_empty() {
        return;
    }
    let mut linked = vec![false; input.items.len()];
    for &(a, b) in &input.pairs {
        linked[a] = true;
        linked[b] = true;
    }
    let mut items_per_block: HashMap<u64, (u64, bool)> = HashMap::new();
    for (i, item) in input.items.iter().enumerate() {
        let entry = items_per_block
            .entry(input.geometry.block_of(item.addr))
            .or_insert((0, false));
        entry.0 += 1;
        entry.1 |= linked[i];
    }
    let mut related_blocks: HashMap<u64, bool> = items_per_block
        .iter()
        .filter(|(_, &(count, has_linked))| count >= 2 && has_linked)
        .map(|(&block, _)| (block, false))
        .collect();
    if related_blocks.is_empty() {
        return;
    }
    for &(a, b) in &input.pairs {
        let (ba, bb) = (
            input.geometry.block_of(input.items[a].addr),
            input.geometry.block_of(input.items[b].addr),
        );
        if ba == bb {
            if let Some(flag) = related_blocks.get_mut(&ba) {
                *flag = true;
            }
        }
    }
    let multi = related_blocks.len();
    let mut unrelated: Vec<u64> = related_blocks
        .iter()
        .filter(|(_, &related)| !related)
        .map(|(&block, _)| block)
        .collect();
    unrelated.sort_unstable();
    let fraction = unrelated.len() as f64 / multi as f64;
    if fraction <= config.max_unrelated_block_fraction {
        return;
    }
    let shown: Vec<u64> = unrelated
        .iter()
        .copied()
        .take(config.max_reported_addrs)
        .collect();
    report.findings.push(Finding::new(
        Rule::Cluster02,
        format!(
            "{} of {multi} multi-item cache block(s) ({:.0}%) hold only mutually \
             unrelated items (limit {:.0}%)",
            unrelated.len(),
            fraction * 100.0,
            config.max_unrelated_block_fraction * 100.0,
        ),
        shown,
    ));
}

/// COLOR-01: every certainly-hot item sits in a hot slot. This is the
/// coloring guarantee — a hot element in a cold set can be evicted by
/// cold data, which is exactly what coloring exists to prevent.
fn check_color_01(
    input: &AuditInput,
    config: &AuditConfig,
    heat: &HeatPartition,
    report: &mut Report,
) {
    let Some(color) = input.color else { return };
    let mut offenders: Vec<usize> = (0..input.items.len())
        .filter(|&i| {
            heat.certainly_hot(input.items[i].heat) && !color.is_hot_slot(input.items[i].addr)
        })
        .collect();
    report.stats.hot_in_cold = offenders.len();
    if offenders.is_empty() {
        return;
    }
    offenders.sort_by_key(|&i| input.items[i].addr);
    let example = &input.items[offenders[0]];
    report.findings.push(Finding::new(
        Rule::Color01,
        format!(
            "{} hot element(s) mapped to cold cache sets (e.g. {} at {:#x}, heat {:.1} \
             vs hot/cold boundary {:.1}); cold data can evict them",
            offenders.len(),
            example.label,
            example.addr,
            example.heat,
            heat.boundary,
        ),
        offenders
            .iter()
            .take(config.max_reported_addrs)
            .map(|&i| input.items[i].addr)
            .collect(),
    ));
}

/// COLOR-02: no certainly-cold item occupies a hot slot. Cold data in
/// the reserved partition competes with the hot working set for the very
/// sets coloring set aside.
fn check_color_02(
    input: &AuditInput,
    config: &AuditConfig,
    heat: &HeatPartition,
    report: &mut Report,
) {
    let Some(color) = input.color else { return };
    let mut offenders: Vec<usize> = (0..input.items.len())
        .filter(|&i| {
            heat.certainly_cold(input.items[i].heat) && color.is_hot_slot(input.items[i].addr)
        })
        .collect();
    report.stats.cold_in_hot = offenders.len();
    if offenders.is_empty() {
        return;
    }
    offenders.sort_by_key(|&i| input.items[i].addr);
    let example = &input.items[offenders[0]];
    report.findings.push(Finding::new(
        Rule::Color02,
        format!(
            "{} cold element(s) occupy the reserved hot partition (e.g. {} at {:#x}, \
             heat {:.1} vs hot/cold boundary {:.1})",
            offenders.len(),
            example.label,
            example.addr,
            example.heat,
            heat.boundary,
        ),
        offenders
            .iter()
            .take(config.max_reported_addrs)
            .map(|&i| input.items[i].addr)
            .collect(),
    ));
}

/// SET-01: no cache set is owed more certainly-hot blocks than its
/// associativity — more and the hot items evict *each other* no matter
/// what the cold data does.
fn check_set_01(
    input: &AuditInput,
    config: &AuditConfig,
    heat: &HeatPartition,
    report: &mut Report,
) {
    let mut hot_blocks: Vec<u64> = input
        .items
        .iter()
        .filter(|item| heat.certainly_hot(item.heat))
        .flat_map(|item| input.geometry.blocks_touched(item.addr, item.size))
        .collect();
    hot_blocks.sort_unstable();
    hot_blocks.dedup();
    let mut per_set: HashMap<u64, Vec<u64>> = HashMap::new();
    for block in hot_blocks {
        per_set
            .entry(input.geometry.set_of(block))
            .or_default()
            .push(block);
    }
    let assoc = input.geometry.assoc() as usize;
    let mut overloaded: Vec<(u64, Vec<u64>)> = per_set
        .into_iter()
        .filter(|(_, blocks)| blocks.len() > assoc)
        .collect();
    if overloaded.is_empty() {
        return;
    }
    // Worst set first; report that one and summarize the rest.
    overloaded.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
    let (worst_set, worst_blocks) = &overloaded[0];
    report.findings.push(Finding::new(
        Rule::Set01,
        format!(
            "{} cache set(s) hold more hot blocks than their associativity ({assoc}): \
             worst is set {worst_set} with {} conflicting hot blocks",
            overloaded.len(),
            worst_blocks.len(),
        ),
        worst_blocks
            .iter()
            .copied()
            .take(config.max_reported_addrs)
            .collect(),
    ));
}

/// ALIGN-01: an element that fits in one block should not straddle two —
/// a straddling element costs two fetches (and two set slots) every time
/// it is touched.
fn check_align_01(input: &AuditInput, config: &AuditConfig, report: &mut Report) {
    let block_bytes = input.geometry.block_bytes();
    let mut offenders: Vec<&crate::input::AuditItem> = input
        .items
        .iter()
        .filter(|item| {
            item.size > 0
                && item.size <= block_bytes
                && input.geometry.blocks_touched(item.addr, item.size).count() > 1
        })
        .collect();
    if offenders.is_empty() {
        return;
    }
    offenders.sort_by_key(|item| item.addr);
    let example = offenders[0];
    report.findings.push(Finding::new(
        Rule::Align01,
        format!(
            "{} element(s) needlessly straddle a {block_bytes}-byte block boundary \
             (e.g. {}: {} bytes at {:#x})",
            offenders.len(),
            example.label,
            example.size,
            example.addr,
        ),
        offenders
            .iter()
            .take(config.max_reported_addrs)
            .map(|item| item.addr)
            .collect(),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{AuditItem, ColorSpec};
    use cc_sim::CacheGeometry;

    fn item(addr: u64, size: u64, heat: f64) -> AuditItem {
        AuditItem {
            label: format!("item {addr:#x}"),
            addr,
            size,
            heat,
        }
    }

    fn bare_input(items: Vec<AuditItem>, pairs: Vec<(usize, usize)>) -> AuditInput {
        AuditInput {
            items,
            pairs,
            geometry: CacheGeometry::new(64, 64, 1), // 4 KB direct-mapped
            page_bytes: 512,
            color: None,
        }
    }

    #[test]
    fn perfect_clustering_is_clean() {
        // Three 20-byte items in one block, chained.
        let input = bare_input(
            vec![item(0, 20, 0.0), item(20, 20, 0.0), item(40, 20, 0.0)],
            vec![(0, 1), (1, 2)],
        );
        let report = audit(&input, &AuditConfig::default());
        assert!(report.is_clean(), "{}", report.to_text());
        assert_eq!(report.stats.colocation_score, Some(1.0));
    }

    #[test]
    fn scattered_pairs_trip_cluster_01() {
        // Every item in its own block although three would fit.
        let input = bare_input(
            (0..6).map(|i| item(i * 64, 20, 0.0)).collect(),
            (0..5).map(|i| (i, i + 1)).collect(),
        );
        let report = audit(&input, &AuditConfig::default());
        assert_eq!(report.stats.colocation_score, Some(0.0));
        let cluster = report.of_rule(Rule::Cluster01);
        assert_eq!(cluster.len(), 1);
        assert!(cluster[0].message.contains("score 0.00"));
    }

    #[test]
    fn unrelated_roommates_trip_cluster_02_only() {
        // Two well-clustered chains (blocks 0 and 1), plus two blocks
        // that pack a linked item with a stranger. The co-location score
        // stays above threshold (4 of 5 achievable) but half the
        // multi-item blocks hold no related pair.
        let input = bare_input(
            vec![
                item(0, 20, 0.0),
                item(20, 20, 0.0),
                item(40, 20, 0.0), // block 0: chained triple
                item(64, 20, 0.0),
                item(84, 20, 0.0),
                item(104, 20, 0.0), // block 1: chained triple
                item(128, 20, 0.0),
                item(148, 20, 0.0), // block 2: linked item + stranger
                item(192, 20, 0.0),
                item(212, 20, 0.0), // block 3: linked item + stranger
            ],
            vec![(0, 1), (1, 2), (3, 4), (4, 5), (0, 6), (0, 8)],
        );
        let report = audit(&input, &AuditConfig::default());
        assert!(
            report.of_rule(Rule::Cluster01).is_empty(),
            "{}",
            report.to_text()
        );
        assert_eq!(report.stats.colocation_score, Some(0.8));
        let c2 = report.of_rule(Rule::Cluster02);
        assert_eq!(c2.len(), 1, "{}", report.to_text());
        assert!(c2[0].message.contains("2 of 4"));
        assert_eq!(c2[0].addrs, vec![128, 192]);
    }

    #[test]
    fn blocks_of_unknown_affinity_items_are_not_judged() {
        // Items 2..6 participate in no pair: the audit knows nothing
        // about them, so their shared blocks are not "unrelated".
        let input = bare_input(
            vec![
                item(0, 20, 0.0),
                item(20, 20, 0.0), // block 0: the linked pair
                item(64, 20, 0.0),
                item(84, 20, 0.0), // block 1: strangers, unknown affinity
                item(128, 20, 0.0),
                item(148, 20, 0.0), // block 2: same
            ],
            vec![(0, 1)],
        );
        let report = audit(&input, &AuditConfig::default());
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn no_pairs_means_cluster_rules_are_quiet() {
        let input = bare_input(vec![item(0, 20, 0.0), item(20, 20, 0.0)], vec![]);
        let report = audit(&input, &AuditConfig::default());
        assert!(report.is_clean());
        assert_eq!(report.stats.colocation_score, None);
    }

    #[test]
    fn oversized_items_cannot_cluster_so_no_finding() {
        // 64-byte items: k = 1, no co-location achievable.
        let input = bare_input(vec![item(0, 64, 0.0), item(128, 64, 0.0)], vec![(0, 1)]);
        let report = audit(&input, &AuditConfig::default());
        assert!(report.of_rule(Rule::Cluster01).is_empty());
        assert_eq!(report.stats.colocation_score, None);
    }

    /// 4 KB direct-mapped cache colored half hot: way = 4096, hot = 2048
    /// (page 512 keeps the rounding exact), capacity for hot items 2048 B.
    fn colored_input(items: Vec<AuditItem>) -> AuditInput {
        let geometry = CacheGeometry::new(64, 64, 1);
        AuditInput {
            items,
            pairs: vec![],
            geometry,
            page_bytes: 512,
            color: Some(ColorSpec::new(geometry, 512, 0.5)),
        }
    }

    #[test]
    fn hot_item_in_cold_slot_trips_color_01() {
        // 40 hot items of 64 B overflow nothing (2560 > 2048 capacity, so
        // a boundary exists at heat 10); the certainly-hot item at a cold
        // offset (2048..4096 within the way) is flagged.
        let mut items: Vec<AuditItem> = (0..39).map(|i| item(i * 64, 64, 10.0)).collect();
        items.push(item(3000, 64, 100.0)); // very hot, cold slot
        let report = audit(&colored_input(items), &AuditConfig::default());
        let c1 = report.of_rule(Rule::Color01);
        assert_eq!(c1.len(), 1, "{}", report.to_text());
        assert_eq!(c1[0].addrs, vec![3000]);
        assert_eq!(report.stats.hot_in_cold, 1);
    }

    #[test]
    fn cold_item_in_hot_slot_trips_color_02() {
        let mut items: Vec<AuditItem> = (0..40).map(|i| item(4096 + i * 64, 64, 10.0)).collect();
        items.push(item(0, 64, 0.0)); // certainly cold, hot slot
        let report = audit(&colored_input(items), &AuditConfig::default());
        let c2 = report.of_rule(Rule::Color02);
        assert_eq!(c2.len(), 1, "{}", report.to_text());
        assert_eq!(c2[0].addrs, vec![0]);
    }

    #[test]
    fn uniform_heat_disables_color_rules() {
        let items: Vec<AuditItem> = (0..100).map(|i| item(i * 64, 64, 0.0)).collect();
        let report = audit(&colored_input(items), &AuditConfig::default());
        assert!(report.of_rule(Rule::Color01).is_empty());
        assert!(report.of_rule(Rule::Color02).is_empty());
    }

    #[test]
    fn items_within_tolerance_are_not_flagged() {
        // Boundary heat is 10.0; an item at heat 11 in a cold slot is
        // within the ±2 dead band, so COLOR-01 stays quiet.
        let mut items: Vec<AuditItem> = (0..40).map(|i| item(i * 64, 64, 10.0)).collect();
        items.push(item(3000, 64, 11.0));
        let report = audit(&colored_input(items), &AuditConfig::default());
        assert!(report.of_rule(Rule::Color01).is_empty());
    }

    #[test]
    fn conflicting_hot_blocks_trip_set_01() {
        // Direct-mapped: three very hot blocks exactly one way apart all
        // map to set 0; many warm items exceed the cache capacity so a
        // finite boundary exists below the hot three.
        let mut items: Vec<AuditItem> = (0..3).map(|i| item(i * 4096, 64, 50.0)).collect();
        items.extend((0..64).map(|i| item(0x10_0000 + i * 64, 64, 1.0)));
        let input = bare_input(items, vec![]);
        let report = audit(&input, &AuditConfig::default());
        let s1 = report.of_rule(Rule::Set01);
        assert_eq!(s1.len(), 1, "{}", report.to_text());
        assert!(s1[0].message.contains("3 conflicting hot blocks"));
        assert_eq!(s1[0].addrs, vec![0, 4096, 8192]);
    }

    #[test]
    fn straddling_item_trips_align_01() {
        let input = bare_input(vec![item(60, 20, 0.0)], vec![]);
        let report = audit(&input, &AuditConfig::default());
        let a1 = report.of_rule(Rule::Align01);
        assert_eq!(a1.len(), 1);
        assert_eq!(a1[0].addrs, vec![60]);
        // A block-aligned full block is fine, as is an oversized item.
        let ok = bare_input(vec![item(64, 64, 0.0), item(256, 100, 0.0)], vec![]);
        assert!(audit(&ok, &AuditConfig::default()).is_clean());
    }

    #[test]
    fn empty_input_is_clean() {
        let report = audit(&bare_input(vec![], vec![]), &AuditConfig::default());
        assert!(report.is_clean());
        assert_eq!(report.stats.items, 0);
    }
}
