//! Audit rules over measured miss attribution.
//!
//! The structural rules in [`crate::rules`] predict conflicts from the
//! layout alone. The simulator's miss-attribution profiler
//! ([`cc_obs::MissProfile`]) measures them: every eviction is charged
//! to a (victim region, evictor region) pair. This module turns those
//! measurements into [`Finding`]s — the CONFLICT-01 rule fires when two
//! *different* regions evict each other's blocks more than a threshold,
//! which is exactly the cross-structure interference the paper's
//! coloring removes. (A region evicting *itself* is a capacity or
//! clustering problem, already covered by CLUSTER-01/SET-01, and is not
//! reported here.)

use cc_obs::attrib::Level;
use cc_obs::MissProfile;

use crate::report::{Finding, Rule};

/// Findings for every cross-region conflict pair with at least
/// `min_evictions` measured evictions.
///
/// Pairs are reported in the profile's deterministic (level, victim,
/// evictor) order. Self-conflicts are skipped; so is any pair below
/// the threshold. `min_evictions` of 0 is clamped to 1 — a pair that
/// never evicted anything is not a conflict.
pub fn conflict_findings(profile: &MissProfile, min_evictions: u64) -> Vec<Finding> {
    let threshold = min_evictions.max(1);
    let map = profile.region_map();
    profile
        .conflict_pairs()
        .into_iter()
        .filter(|p| p.victim != p.evictor && p.count >= threshold)
        .map(|p| {
            let level = match p.level {
                Level::L1 => "L1",
                Level::L2 => "L2",
            };
            Finding::new(
                Rule::Conflict01,
                format!(
                    "region '{}' lost {} {} block(s) to region '{}' \
                     (measured by miss attribution)",
                    map.name(p.victim),
                    p.count,
                    level,
                    map.name(p.evictor),
                ),
                Vec::new(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_obs::RegionMap;
    use std::sync::Arc;

    fn profile_with_conflicts() -> MissProfile {
        let mut map = RegionMap::new();
        let tree = map.register("tree", 0x1000, 0x2000);
        let list = map.register("list", 0x3000, 0x4000);
        let mut p = MissProfile::new(Arc::new(map));
        for _ in 0..5 {
            p.record_eviction(Level::L1, tree, list);
        }
        p.record_eviction(Level::L2, list, tree);
        // Self-eviction: never a CONFLICT-01 finding.
        p.record_eviction(Level::L1, tree, tree);
        p
    }

    #[test]
    fn cross_region_pairs_become_findings() {
        let findings = conflict_findings(&profile_with_conflicts(), 1);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.rule == Rule::Conflict01));
        assert!(findings[0]
            .message
            .contains("'tree' lost 5 L1 block(s) to region 'list'"));
        assert!(findings[1]
            .message
            .contains("'list' lost 1 L2 block(s) to region 'tree'"));
    }

    #[test]
    fn threshold_filters_small_pairs() {
        let findings = conflict_findings(&profile_with_conflicts(), 2);
        assert_eq!(findings.len(), 1, "only the 5-eviction pair survives");
        // Zero clamps to one rather than reporting never-fired pairs.
        assert_eq!(conflict_findings(&profile_with_conflicts(), 0).len(), 2);
    }

    #[test]
    fn quiet_profile_is_clean() {
        let map = Arc::new(RegionMap::new());
        let p = MissProfile::new(map);
        assert!(conflict_findings(&p, 1).is_empty());
    }
}
