//! Surfaces `cc-lint`'s static struct-layout findings through the audit
//! report types, so one `Report` can carry dynamic (snapshot/trace) and
//! static (source) findings side by side with the same severities, text
//! rendering, and stable JSON.
//!
//! The static rules have no heap addresses; the `addrs` slot of each
//! bridged [`Finding`] instead carries the modeled **byte offsets** of
//! the offending fields within the struct (the same quantity the dynamic
//! ALIGN-01 reasons about, one level down).

use crate::report::{Finding, Report, Rule};
use cc_lint::{LintReport, LintRule};

/// Maps a lint rule to its audit-report counterpart.
pub fn rule_of(lint: LintRule) -> Rule {
    match lint {
        LintRule::Pad01 => Rule::Pad01,
        LintRule::Span01 => Rule::Span01,
        LintRule::Hot01 => Rule::Hot01,
        LintRule::Soa01 => Rule::Soa01,
    }
}

/// Converts a lint report's findings into audit findings.
///
/// Waived (baselined) findings are skipped — the audit view is the gate
/// view. The message is prefixed with `file::Struct` so a merged report
/// stays attributable, and the suggestion rides along because the audit
/// remediation texts are generic while cc-lint's are concrete.
pub fn findings_of(lint: &LintReport) -> Vec<Finding> {
    lint.findings
        .iter()
        .filter(|f| !f.waived)
        .map(|f| {
            let offsets: Vec<u64> = f
                .fields
                .iter()
                .filter_map(|name| {
                    lint.structs
                        .iter()
                        .find(|s| s.file == f.file && s.name == f.strukt)
                        .and_then(|s| s.fields.iter().find(|(n, ..)| n == name))
                        .map(|field| field.1)
                })
                .collect();
            Finding::new(
                rule_of(f.rule),
                format!("{}::{}: {} — {}", f.file, f.strukt, f.message, f.suggestion),
                offsets,
            )
        })
        .collect()
}

/// Appends a lint report's findings to an audit report and re-normalizes.
pub fn merge_into(report: &mut Report, lint: &LintReport) {
    report.findings.extend(findings_of(lint));
    report.normalize();
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_lint::{analyze_sources, HotSpec, LintConfig};

    fn lint_of(src: &str) -> LintReport {
        analyze_sources(
            &[("t.rs".to_string(), src.to_string())],
            &HotSpec::empty(),
            &LintConfig::default(),
        )
    }

    #[test]
    fn pad_finding_bridges_with_field_offsets() {
        let lint = lint_of("struct Bad { a: u8, b: u64, c: u8, d: u64, e: u8, f: u64 }");
        let findings = findings_of(&lint);
        assert!(findings.iter().any(|f| f.rule == Rule::Pad01));
        let pad = findings.iter().find(|f| f.rule == Rule::Pad01).unwrap();
        assert!(pad.message.contains("t.rs::Bad"));
        assert!(pad.message.contains("reorder fields as"));
    }

    #[test]
    fn span_finding_carries_the_field_offset() {
        let lint = lint_of(
            "struct S { head: [u8; 60], tail: [u8; 8], z: u64 }", // tail at 60 crosses 64
        );
        let findings = findings_of(&lint);
        let span = findings
            .iter()
            .find(|f| f.rule == Rule::Span01)
            .expect("SPAN-01 bridges");
        assert_eq!(span.addrs, vec![60], "addrs carry modeled field offsets");
    }

    #[test]
    fn waived_findings_do_not_bridge() {
        let mut lint = lint_of("struct Bad { a: u8, b: u64, c: u8, d: u64, e: u8, f: u64 }");
        let keys: std::collections::BTreeSet<String> =
            lint.findings.iter().map(|f| f.key()).collect();
        lint.apply_baseline(&keys);
        assert!(findings_of(&lint).is_empty());
    }

    #[test]
    fn merged_report_normalizes_static_after_dynamic() {
        let mut report = Report::default();
        report.findings.push(Finding::new(
            Rule::Align01,
            "dynamic straddler".into(),
            vec![0x40],
        ));
        let lint = lint_of("struct Bad { a: u8, b: u64, c: u8, d: u64, e: u8, f: u64 }");
        merge_into(&mut report, &lint);
        assert!(report.findings.len() > 1);
        // Rule order in the enum puts dynamic rules before static ones.
        let align_pos = report
            .findings
            .iter()
            .position(|f| f.rule == Rule::Align01)
            .unwrap();
        let pad_pos = report
            .findings
            .iter()
            .position(|f| f.rule == Rule::Pad01)
            .unwrap();
        assert!(align_pos < pad_pos);
    }
}
