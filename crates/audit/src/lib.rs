//! **`cc-audit`** — a layout-invariant analysis pass that proves
//! clustering and coloring did what the paper promises.
//!
//! *Cache-Conscious Structure Layout* (Chilimbi, Hill & Larus, PLDI 1999)
//! makes checkable claims about where a transformed layout puts things:
//! contemporaneously accessed elements share cache blocks (clustering,
//! Section 2.1), frequently accessed elements map only to the reserved
//! hot cache sets (coloring, Section 2.2). This crate audits a concrete
//! simulated layout against those claims — statically, without running a
//! workload — and reports violations as structured findings.
//!
//! # Inputs
//!
//! An [`AuditInput`] combines:
//!
//! * **items** — addressed objects, from a `ccmorph`
//!   [`Layout`](cc_core::Layout) ([`AuditInput::from_tree_layout`]) or a
//!   heap [`LayoutSnapshot`](cc_heap::LayoutSnapshot)
//!   ([`AuditInput::from_snapshot`]);
//! * **affinity pairs** — which items should be co-located, from the
//!   structure's topology or the allocator's recorded hints;
//! * **cache geometry** — the [`CacheGeometry`](cc_sim::CacheGeometry)
//!   being laid out against;
//! * optionally a **[`ColorSpec`]** (the intended hot/cold partition) and
//!   observed heat from a recorded
//!   [`AffinityTrace`](cc_sim::AffinityTrace)
//!   ([`AuditInput::apply_trace`]).
//!
//! # Rules
//!
//! [`audit`] runs six rules — CLUSTER-01/02, COLOR-01/02, SET-01 and
//! ALIGN-01 — documented in `crates/audit/README.md`, and returns a
//! [`Report`] renderable as text or stable JSON.
//!
//! # Example
//!
//! ```
//! use cc_audit::{audit, scenarios, AuditConfig};
//!
//! // A ccmorph-reorganized tree satisfies every invariant…
//! let good = audit(&scenarios::ccmorph_tree(1023), &AuditConfig::default());
//! assert!(good.is_clean());
//!
//! // …while the baseline malloc layout of the same tree does not.
//! let bad = audit(&scenarios::malloc_tree(1023), &AuditConfig::default());
//! assert!(bad.error_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrib;
pub mod input;
pub mod lint_bridge;
pub mod report;
pub mod rules;
pub mod scenarios;

pub use input::{AffinityKind, AuditInput, AuditItem, ColorSpec};
pub use report::{AuditStats, Finding, Report, Rule, Severity};
pub use rules::{audit, AuditConfig};
