//! Canonical audit scenarios: the paper's layouts, good and bad, built
//! from the real `cc-core`/`cc-heap` machinery. The CLI exposes them for
//! demonstration and the test suites use them as positive/negative
//! oracles — a reorganized/hint-allocated structure must audit clean,
//! the same structure under a layout-oblivious `malloc` must not.

use cc_core::affinity;
use cc_core::ccmorph::{ccmorph, CcMorphParams};
use cc_core::topology::VecTree;
use cc_heap::{Allocator, CcMalloc, Malloc, Strategy, VirtualSpace};
use cc_sim::MachineConfig;

use crate::input::{AffinityKind, AuditInput, ColorSpec};

/// Tree-node payload: the paper's 20-byte microbenchmark node
/// (Section 5.4), three to a 64-byte L2 block.
pub const TREE_ELEM_BYTES: u64 = 20;

/// List-cell payload for the Figure 4 linked-list workload.
pub const LIST_ELEM_BYTES: u64 = 20;

/// Scenario names accepted by [`build`] (and the `cc-audit` CLI).
pub const ALL: [&str; 4] = [
    "ccmorph-tree",
    "malloc-tree",
    "ccmalloc-list",
    "malloc-list",
];

/// One-line description of a scenario.
pub fn describe(name: &str) -> Option<&'static str> {
    match name {
        "ccmorph-tree" => Some(
            "complete binary tree reorganized by ccmorph (subtree clustering \
             + half-cache coloring) — audits clean",
        ),
        "malloc-tree" => Some(
            "the same tree allocated in preorder by the baseline malloc — \
             trips CLUSTER-01 and COLOR-01",
        ),
        "ccmalloc-list" => Some(
            "linked list allocated by ccmalloc with predecessor hints \
             (paper Figure 4) — audits clean",
        ),
        "malloc-list" => Some(
            "linked list allocated by the baseline malloc, interleaved with \
             unrelated allocations — trips CLUSTER-01",
        ),
        _ => None,
    }
}

/// Builds a scenario by name with `n` elements.
pub fn build(name: &str, n: usize) -> Option<AuditInput> {
    match name {
        "ccmorph-tree" => Some(ccmorph_tree(n)),
        "malloc-tree" => Some(malloc_tree(n)),
        "ccmalloc-list" => Some(ccmalloc_list(n)),
        "malloc-list" => Some(malloc_list(n)),
        _ => None,
    }
}

fn machine() -> MachineConfig {
    MachineConfig::ultrasparc_e5000()
}

/// The coloring discipline the tree scenarios are audited against: half
/// the machine's L2 sets reserved hot, as in the paper's microbenchmark.
pub fn intended_color() -> ColorSpec {
    let m = machine();
    ColorSpec::new(m.l2, m.page_bytes, 0.5)
}

/// A complete binary tree reorganized by `ccmorph` with subtree
/// clustering and half-cache coloring — the layout the paper promises.
pub fn ccmorph_tree(nodes: usize) -> AuditInput {
    let m = machine();
    let t = VecTree::complete_binary(nodes);
    let mut vs = VirtualSpace::new(m.page_bytes);
    let params = CcMorphParams::clustering_and_coloring(&m, TREE_ELEM_BYTES);
    let layout = ccmorph(&t, &mut vs, &params);
    AuditInput::from_tree_layout(&t, &layout, &params)
}

/// The same complete binary tree allocated node-by-node in preorder by
/// the layout-oblivious baseline `Malloc`, audited against the coloring
/// the paper *intends* — the negative oracle.
pub fn malloc_tree(nodes: usize) -> AuditInput {
    let m = machine();
    let t = VecTree::complete_binary(nodes);
    let mut heap = Malloc::new(m.page_bytes);
    let mut addr = vec![None; nodes];
    for n in affinity::preorder(&t) {
        addr[n] = Some(heap.alloc(TREE_ELEM_BYTES));
    }
    AuditInput::from_tree_addrs(
        &t,
        |n| addr[n],
        TREE_ELEM_BYTES,
        m.l2,
        m.page_bytes,
        Some(intended_color()),
        AffinityKind::ParentChild,
    )
}

/// A linked list allocated cell-by-cell by `ccmalloc`, each cell hinting
/// at its predecessor (paper Figure 4): cells pack three to a block, and
/// the audit input is reconstructed purely from the heap snapshot — items
/// from the live allocations, affinity pairs from the recorded hints.
pub fn ccmalloc_list(cells: usize) -> AuditInput {
    let m = machine();
    let mut heap = CcMalloc::new(&m, Strategy::Closest);
    let mut prev = None;
    for _ in 0..cells {
        prev = Some(heap.alloc_hint(LIST_ELEM_BYTES, prev));
    }
    AuditInput::from_snapshot(&heap.snapshot(), m.l2, m.page_bytes, None)
}

/// The same hinted list built on the baseline `Malloc`, with an unrelated
/// allocation interleaved between cells (the contemporaneous-allocation
/// noise of real programs). `Malloc` ignores the hints but its snapshot
/// still records them, so the audit knows which pairs *should* have been
/// co-located — and finds none of them sharing a block.
pub fn malloc_list(cells: usize) -> AuditInput {
    let m = machine();
    let mut heap = Malloc::new(m.page_bytes);
    let mut prev = None;
    for _ in 0..cells {
        prev = Some(heap.alloc_hint(LIST_ELEM_BYTES, prev));
        heap.alloc(LIST_ELEM_BYTES); // noise: e.g. a string or a temp
    }
    AuditInput::from_snapshot(&heap.snapshot(), m.l2, m.page_bytes, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Rule;
    use crate::rules::{audit, AuditConfig};

    #[test]
    fn every_name_builds_and_describes() {
        for name in ALL {
            assert!(describe(name).is_some(), "{name}");
            let input = build(name, 127).unwrap();
            assert!(!input.items.is_empty(), "{name}");
        }
        assert!(build("nope", 10).is_none());
        assert!(describe("nope").is_none());
    }

    #[test]
    fn ccmalloc_list_is_clean_and_malloc_list_is_not() {
        let cfg = AuditConfig::default();
        let good = audit(&ccmalloc_list(300), &cfg);
        assert!(good.is_clean(), "{}", good.to_text());
        assert_eq!(good.stats.colocation_score, Some(1.0));
        let bad = audit(&malloc_list(300), &cfg);
        assert!(
            !bad.of_rule(Rule::Cluster01).is_empty(),
            "{}",
            bad.to_text()
        );
        assert_eq!(bad.stats.colocation_score, Some(0.0));
    }

    #[test]
    fn small_tree_scenarios_behave() {
        let cfg = AuditConfig::default();
        // Small trees fit the hot region entirely: ccmorph still clean.
        let good = audit(&ccmorph_tree(1023), &cfg);
        assert!(good.is_clean(), "{}", good.to_text());
        // Malloc's preorder run at least splits clusters.
        let bad = audit(&malloc_tree(1023), &cfg);
        assert!(
            !bad.of_rule(Rule::Cluster01).is_empty(),
            "{}",
            bad.to_text()
        );
    }
}
