//! Structured diagnostics: rules, severities, findings, and the report
//! with its text and JSON renderings.

use std::fmt;

/// The audited invariants. Each rule checks one structural claim the
/// paper's techniques make; see `crates/audit/README.md` for the full
/// catalogue with remediations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Hot element placed where it maps to a cold set.
    Color01,
    /// Cold element polluting the reserved hot partition.
    Color02,
    /// High-affinity pairs split across L2 blocks (poor clustering).
    Cluster01,
    /// Unrelated items co-located in one block (wasted block capacity).
    Cluster02,
    /// Conflict-pressure hotspot: a set owed more hot bytes than its
    /// associativity can hold.
    Set01,
    /// Allocation needlessly straddling a cache-block boundary.
    Align01,
    /// Two regions measured (by the miss-attribution profiler) evicting
    /// each other's blocks — cross-structure conflict the paper's
    /// coloring exists to remove.
    Conflict01,
    /// Static (cc-lint): declaration order wastes avoidable padding.
    Pad01,
    /// Static (cc-lint): a field straddles a cache-line boundary.
    Span01,
    /// Static (cc-lint): declared-hot fields split across lines by cold
    /// ones.
    Hot01,
    /// Static (cc-lint): an AoS element whose hot bytes would fit a line
    /// after a structure split.
    Soa01,
}

impl Rule {
    /// Every rule, in report order. The first seven are dynamic (heap
    /// snapshot / measured misses); the last four are the static
    /// struct-layout rules surfaced from `cc-lint`.
    pub const ALL: [Rule; 11] = [
        Rule::Color01,
        Rule::Color02,
        Rule::Cluster01,
        Rule::Cluster02,
        Rule::Set01,
        Rule::Align01,
        Rule::Conflict01,
        Rule::Pad01,
        Rule::Span01,
        Rule::Hot01,
        Rule::Soa01,
    ];

    /// Stable diagnostic id.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::Color01 => "COLOR-01",
            Rule::Color02 => "COLOR-02",
            Rule::Cluster01 => "CLUSTER-01",
            Rule::Cluster02 => "CLUSTER-02",
            Rule::Set01 => "SET-01",
            Rule::Align01 => "ALIGN-01",
            Rule::Conflict01 => "CONFLICT-01",
            Rule::Pad01 => "PAD-01",
            Rule::Span01 => "SPAN-01",
            Rule::Hot01 => "HOT-01",
            Rule::Soa01 => "SOA-01",
        }
    }

    /// Default severity of a violation.
    pub fn severity(&self) -> Severity {
        match self {
            Rule::Color01 | Rule::Cluster01 | Rule::Hot01 => Severity::Error,
            Rule::Color02
            | Rule::Cluster02
            | Rule::Set01
            | Rule::Conflict01
            | Rule::Pad01
            | Rule::Span01 => Severity::Warning,
            Rule::Align01 | Rule::Soa01 => Severity::Info,
        }
    }

    /// Suggested fix, phrased for the diagnostic.
    pub fn remediation(&self) -> &'static str {
        match self {
            Rule::Color01 => {
                "recolor: place this element via the colored space's hot \
                 allocator (ccmorph with a ColorConfig), or raise hot_fraction"
            }
            Rule::Color02 => {
                "recolor: allocate cold data via alloc_cold so it cannot \
                 evict the hot working set"
            }
            Rule::Cluster01 => {
                "recluster: reorganize with ccmorph (subtree clustering), or \
                 pass the parent/predecessor as the ccmalloc hint at \
                 allocation time"
            }
            Rule::Cluster02 => {
                "recluster: co-locate items that are accessed together; \
                 unrelated block-mates waste the fetch the miss already paid"
            }
            Rule::Set01 => {
                "spread hot data: lower hot_fraction pressure or interleave \
                 across ways; more hot bytes than assoc x block per set must \
                 conflict"
            }
            Rule::Align01 => {
                "align: start the allocation on a block boundary or pack it \
                 within one block; a straddling element costs two fetches"
            }
            Rule::Conflict01 => {
                "color: move the two regions into disjoint cache sets \
                 (ccmorph with a ColorConfig, or separate arenas aligned to \
                 different way offsets); mutual eviction is pure conflict \
                 traffic"
            }
            Rule::Pad01 => {
                "reorder: sort fields by decreasing alignment then size and \
                 pin with #[repr(C)]; cc-lint's finding carries the exact \
                 order"
            }
            Rule::Span01 => {
                "reorder or align: keep the field inside one cache line at \
                 every array stride; see cc-lint's suggested layout"
            }
            Rule::Hot01 => {
                "split or prefix: move the hot fields to a contiguous \
                 prefix, or split the struct hot/cold so a traversal \
                 touches one line per object"
            }
            Rule::Soa01 => {
                "split the array structure-of-arrays style so a hot-loop \
                 scan fetches only hot bytes per line"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Breaks a paper guarantee; the layout will not deliver the claimed
    /// miss-rate behaviour.
    Error,
    /// Wastes capacity or invites conflicts without breaking a guarantee.
    Warning,
    /// Worth knowing; usually harmless.
    Info,
}

impl Severity {
    /// Stable lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One detected violation.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Severity (normally [`Rule::severity`]).
    pub severity: Severity,
    /// What happened, with the evidence inline.
    pub message: String,
    /// Offending addresses (sorted, deduplicated, possibly truncated —
    /// `message` says when).
    pub addrs: Vec<u64>,
}

impl Finding {
    /// Builds a finding with the rule's default severity and normalized
    /// addresses.
    pub fn new(rule: Rule, message: String, mut addrs: Vec<u64>) -> Self {
        addrs.sort_unstable();
        addrs.dedup();
        Finding {
            rule,
            severity: rule.severity(),
            message,
            addrs,
        }
    }
}

/// Aggregate numbers the rules computed, reported even when clean.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AuditStats {
    /// Items analysed.
    pub items: usize,
    /// Affinity pairs analysed.
    pub pairs: usize,
    /// Co-located pairs / best achievable co-located pairs (1.0 = the
    /// layout clusters as well as block capacity allows); `None` without
    /// affinity pairs.
    pub colocation_score: Option<f64>,
    /// Certainly-hot items found in cold slots (COLOR-01 raw count).
    pub hot_in_cold: usize,
    /// Certainly-cold items found in hot slots (COLOR-02 raw count).
    pub cold_in_hot: usize,
}

/// The audit's outcome: findings plus the numbers behind them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// Violations, ordered by rule then first offending address.
    pub findings: Vec<Finding>,
    /// Aggregate statistics.
    pub stats: AuditStats,
}

impl Report {
    /// Whether nothing fired at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings of a given rule.
    pub fn of_rule(&self, rule: Rule) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.rule == rule).collect()
    }

    /// Number of error-severity findings (the CLI's exit status).
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Canonical ordering: rule, then first address, then message.
    pub(crate) fn normalize(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.rule, a.addrs.first(), &a.message).cmp(&(b.rule, b.addrs.first(), &b.message))
        });
    }

    /// Human-readable rendering.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "audit: {} item(s), {} affinity pair(s)\n",
            self.stats.items, self.stats.pairs
        ));
        if let Some(score) = self.stats.colocation_score {
            out.push_str(&format!("colocation score: {}\n", fmt_f64(score)));
        }
        if self.is_clean() {
            out.push_str("clean: no layout violations\n");
            return out;
        }
        for f in &self.findings {
            out.push_str(&format!("{} [{}] {}\n", f.severity, f.rule, f.message));
            if !f.addrs.is_empty() {
                let addrs: Vec<String> = f.addrs.iter().map(|a| format!("{a:#x}")).collect();
                out.push_str(&format!("  at: {}\n", addrs.join(", ")));
            }
            out.push_str(&format!("  fix: {}\n", f.rule.remediation()));
        }
        out.push_str(&format!(
            "{} finding(s), {} error(s)\n",
            self.findings.len(),
            self.error_count()
        ));
        out
    }

    /// Stable machine-readable rendering. Key order, number formatting,
    /// and finding order are all deterministic, so the output is
    /// snapshot-testable; see `tests/audit.rs`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str("  \"stats\": {\n");
        out.push_str(&format!("    \"items\": {},\n", self.stats.items));
        out.push_str(&format!("    \"pairs\": {},\n", self.stats.pairs));
        out.push_str(&format!(
            "    \"colocation_score\": {},\n",
            self.stats
                .colocation_score
                .map_or("null".to_string(), fmt_f64)
        ));
        out.push_str(&format!(
            "    \"hot_in_cold\": {},\n",
            self.stats.hot_in_cold
        ));
        out.push_str(&format!(
            "    \"cold_in_hot\": {}\n",
            self.stats.cold_in_hot
        ));
        out.push_str("  },\n");
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"rule\": \"{}\",\n", f.rule.id()));
            out.push_str(&format!("      \"severity\": \"{}\",\n", f.severity.name()));
            out.push_str(&format!(
                "      \"message\": \"{}\",\n",
                escape_json(&f.message)
            ));
            let addrs: Vec<String> = f.addrs.iter().map(|a| format!("\"{a:#x}\"")).collect();
            out.push_str(&format!("      \"addrs\": [{}],\n", addrs.join(", ")));
            out.push_str(&format!(
                "      \"remediation\": \"{}\"\n",
                escape_json(f.rule.remediation())
            ));
            out.push_str("    }");
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Fixed-precision float formatting so JSON output never depends on
/// float-to-shortest-string vagaries.
fn fmt_f64(x: f64) -> String {
    format!("{x:.4}")
}

/// Minimal JSON string escaping; messages are ASCII by construction but
/// escaping keeps the emitter safe for arbitrary labels.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut r = Report {
            findings: vec![
                Finding::new(Rule::Align01, "straddler".into(), vec![0x40]),
                Finding::new(Rule::Color01, "hot in cold".into(), vec![0x180, 0x100]),
            ],
            stats: AuditStats {
                items: 3,
                pairs: 2,
                colocation_score: Some(0.5),
                hot_in_cold: 1,
                cold_in_hot: 0,
            },
        };
        r.normalize();
        r
    }

    #[test]
    fn normalize_orders_by_rule() {
        let r = sample_report();
        assert_eq!(r.findings[0].rule, Rule::Color01);
        assert_eq!(r.findings[1].rule, Rule::Align01);
        assert_eq!(r.findings[0].addrs, vec![0x100, 0x180], "addrs sorted");
    }

    #[test]
    fn text_mentions_rule_and_fix() {
        let text = sample_report().to_text();
        assert!(text.contains("error [COLOR-01] hot in cold"));
        assert!(text.contains("at: 0x100, 0x180"));
        assert!(text.contains("fix: recolor"));
        assert!(text.contains("2 finding(s), 1 error(s)"));
    }

    #[test]
    fn clean_report_says_so() {
        let r = Report::default();
        assert!(r.is_clean());
        assert!(r.to_text().contains("clean"));
        assert!(r.to_json().contains("\"clean\": true"));
        assert!(r.to_json().contains("\"findings\": []"));
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let r = sample_report();
        assert_eq!(r.to_json(), r.to_json());
        assert!(r.to_json().contains("\"colocation_score\": 0.5000"));
        let mut tricky = Report::default();
        tricky.findings.push(Finding::new(
            Rule::Set01,
            "quote \" and \\ slash".into(),
            vec![],
        ));
        assert!(tricky.to_json().contains("quote \\\" and \\\\ slash"));
    }

    #[test]
    fn every_rule_has_id_and_remediation() {
        for rule in Rule::ALL {
            assert!(!rule.id().is_empty());
            assert!(!rule.remediation().is_empty());
            assert!(rule.id().contains('-'));
        }
    }
}
