//! Miss attribution: per-region, per-level tallies and conflict pairs.
//!
//! The simulator resolves every demand access to a [`RegionId`] and
//! reports it here. Three things are recorded:
//!
//! * per-region **access/hit/miss** counts at each cache level;
//! * per-region **eviction** counts (how often a region's blocks were
//!   thrown out);
//! * **conflict pairs** — for each eviction, the (victim region,
//!   evictor region) pair. A structure that keeps evicting *itself*
//!   wants clustering (more of it per block); two structures that keep
//!   evicting *each other* want coloring into disjoint sets. This is
//!   exactly the signal the paper's coloring decisions consume.
//!
//! The profile is exact, not sampled: when attribution is enabled the
//! simulator takes its reference paths (no batching memos), so tallies
//! here sum to the same totals as the whole-run `CacheStats`.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::field::{FieldId, FieldMap};
use crate::region::{RegionId, RegionMap};

/// Cache level an attribution event happened at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// First-level (direct-mapped in the paper's machines).
    L1,
    /// Second-level (unified, set-associative).
    L2,
}

impl Level {
    fn index(self) -> usize {
        match self {
            Level::L1 => 0,
            Level::L2 => 1,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Level::L1 => "l1",
            Level::L2 => "l2",
        }
    }
}

/// Per-region counters at one cache level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegionTally {
    /// Demand accesses attributed to the region.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Blocks of this region evicted by anyone (including itself).
    pub evictions: u64,
}

/// One aggregated conflict pair, for reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConflictPair {
    /// Level the evictions happened at.
    pub level: Level,
    /// Region that lost its block.
    pub victim: RegionId,
    /// Region whose fill forced the eviction.
    pub evictor: RegionId,
    /// Number of such evictions.
    pub count: u64,
}

/// Optional field-level attribution riding on a [`MissProfile`]: the
/// same access/hit/miss tallies, but resolved through a [`FieldMap`] to
/// the individual struct field each demand access touched.
// The 64-byte unattributed block leads so it sits in one line (SPAN-01,
// cc-lint's own suggestion for this struct).
#[derive(Clone, Debug)]
struct FieldAttrib {
    /// Demand accesses whose address resolved to no field (outside
    /// every object extent, or padding) — kept so field totals plus
    /// this equal the per-level demand totals.
    unattributed: [RegionTally; 2],
    /// `[level][field id]`.
    levels: [Vec<RegionTally>; 2],
    map: Arc<FieldMap>,
}

/// Accumulates attribution events against a fixed [`RegionMap`].
#[derive(Clone, Debug)]
pub struct MissProfile {
    map: Arc<RegionMap>,
    /// `[level][region id]`.
    levels: [Vec<RegionTally>; 2],
    /// `(level index, victim id, evictor id) → count`. A `BTreeMap`
    /// keeps export order deterministic for golden-file tests.
    conflicts: BTreeMap<(u8, u32, u32), u64>,
    /// Field-level tallies, absent unless
    /// [`MissProfile::enable_fields`] opted in. Boxed: the common
    /// region-only profile pays one pointer.
    fields: Option<Box<FieldAttrib>>,
}

impl MissProfile {
    /// An empty profile attributing against `map`.
    pub fn new(map: Arc<RegionMap>) -> Self {
        let tallies = vec![RegionTally::default(); map.len()];
        MissProfile {
            map,
            levels: [tallies.clone(), tallies],
            conflicts: BTreeMap::new(),
            fields: None,
        }
    }

    /// Starts attributing demand accesses to the fields of `fmap` as
    /// well as to regions. Region tallies, conflicts, and the JSON
    /// encoding of profiles *without* fields are unchanged.
    pub fn enable_fields(&mut self, fmap: Arc<FieldMap>) {
        let tallies = vec![RegionTally::default(); fmap.len()];
        self.fields = Some(Box::new(FieldAttrib {
            map: fmap,
            levels: [tallies.clone(), tallies],
            unattributed: [RegionTally::default(); 2],
        }));
    }

    /// Whether field-level attribution is enabled.
    pub fn fields_enabled(&self) -> bool {
        self.fields.is_some()
    }

    /// The field map, if field attribution is enabled.
    pub fn field_map(&self) -> Option<&Arc<FieldMap>> {
        self.fields.as_ref().map(|f| &f.map)
    }

    /// The region map this profile attributes against.
    pub fn region_map(&self) -> &Arc<RegionMap> {
        &self.map
    }

    /// Resolves `addr` through the profile's region map.
    pub fn resolve(&self, addr: u64) -> RegionId {
        self.map.resolve(addr)
    }

    /// Records one demand access by `region` at `level`.
    pub fn record_access(&mut self, level: Level, region: RegionId, hit: bool) {
        let t = &mut self.levels[level.index()][region.index()];
        t.accesses += 1;
        if hit {
            t.hits += 1;
        } else {
            t.misses += 1;
        }
    }

    /// Records one demand access at `level` against the field owning
    /// `addr` (no-op unless [`MissProfile::enable_fields`] opted in).
    /// `addr` must be the first *referenced* byte the block access
    /// covers — block-aligned addresses would alias every field sharing
    /// the block.
    pub fn record_field_access(&mut self, level: Level, addr: u64, hit: bool) {
        let Some(f) = self.fields.as_deref_mut() else {
            return;
        };
        let t = match f.map.resolve(addr) {
            Some(field) => &mut f.levels[level.index()][field.index()],
            None => &mut f.unattributed[level.index()],
        };
        t.accesses += 1;
        if hit {
            t.hits += 1;
        } else {
            t.misses += 1;
        }
    }

    /// Records that a fill by `evictor` evicted a block owned by
    /// `victim` at `level`.
    pub fn record_eviction(&mut self, level: Level, victim: RegionId, evictor: RegionId) {
        self.levels[level.index()][victim.index()].evictions += 1;
        *self
            .conflicts
            .entry((level.index() as u8, victim.raw(), evictor.raw()))
            .or_insert(0) += 1;
    }

    /// Folds another profile (same region map) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two profiles were built over different region
    /// maps — their region ids would not be comparable.
    pub fn merge(&mut self, other: &MissProfile) {
        assert!(
            Arc::ptr_eq(&self.map, &other.map),
            "merging MissProfiles built over different RegionMaps",
        );
        for (level, theirs) in self.levels.iter_mut().zip(&other.levels) {
            for (t, o) in level.iter_mut().zip(theirs) {
                t.accesses += o.accesses;
                t.hits += o.hits;
                t.misses += o.misses;
                t.evictions += o.evictions;
            }
        }
        for (&k, &v) in &other.conflicts {
            *self.conflicts.entry(k).or_insert(0) += v;
        }
        match (self.fields.as_deref_mut(), other.fields.as_deref()) {
            (None, None) => {}
            (Some(mine), Some(theirs)) => {
                assert!(
                    Arc::ptr_eq(&mine.map, &theirs.map),
                    "merging MissProfiles built over different FieldMaps",
                );
                for (level, others) in mine.levels.iter_mut().zip(&theirs.levels) {
                    for (t, o) in level.iter_mut().zip(others) {
                        t.accesses += o.accesses;
                        t.hits += o.hits;
                        t.misses += o.misses;
                    }
                }
                for (t, o) in mine.unattributed.iter_mut().zip(&theirs.unattributed) {
                    t.accesses += o.accesses;
                    t.hits += o.hits;
                    t.misses += o.misses;
                }
            }
            _ => panic!("merging a field-attributing MissProfile with a region-only one"),
        }
    }

    /// The tally for one region at one level.
    pub fn tally(&self, level: Level, region: RegionId) -> RegionTally {
        self.levels[level.index()][region.index()]
    }

    /// Sums every region's tally at `level` — must equal the
    /// simulator's own `CacheStats` totals, which the differential
    /// tests pin.
    pub fn totals(&self, level: Level) -> RegionTally {
        let mut sum = RegionTally::default();
        for t in &self.levels[level.index()] {
            sum.accesses += t.accesses;
            sum.hits += t.hits;
            sum.misses += t.misses;
            sum.evictions += t.evictions;
        }
        sum
    }

    /// Measured per-region miss weights at `level`, in region-id order,
    /// excluding regions with no misses.
    ///
    /// This is the join key for static layout analysis: map each region
    /// name to the structure (or fields) it holds and feed the weights to
    /// `cc-lint` as field-hotness input, so the static suggestions are
    /// ranked by misses actually measured rather than by annotation alone.
    ///
    /// Names are borrowed from the profile's region map — the hot join
    /// calls this per level per report, and it used to clone a fresh
    /// `String` per region each time.
    pub fn region_weights(&self, level: Level) -> Vec<(&str, f64)> {
        (0..self.map.len())
            .filter_map(|id| {
                let region = RegionId::from_raw(id as u32);
                let t = self.levels[level.index()][region.index()];
                (t.misses > 0).then(|| (self.map.name(region), t.misses as f64))
            })
            .collect()
    }

    /// The tally for one field at one level (zero unless field
    /// attribution is enabled).
    pub fn field_tally(&self, level: Level, field: FieldId) -> RegionTally {
        self.fields
            .as_deref()
            .map(|f| f.levels[level.index()][field.index()])
            .unwrap_or_default()
    }

    /// Demand accesses that resolved to no field at `level`.
    pub fn field_unattributed(&self, level: Level) -> RegionTally {
        self.fields
            .as_deref()
            .map(|f| f.unattributed[level.index()])
            .unwrap_or_default()
    }

    /// Measured per-field miss weights at `level`, in field-id order,
    /// excluding fields with no misses — the field-granular analogue of
    /// [`MissProfile::region_weights`], and the input `cc-profile`
    /// feeds to `cc-lint --hot`.
    pub fn field_weights(&self, level: Level) -> Vec<(&str, f64)> {
        let Some(f) = self.fields.as_deref() else {
            return Vec::new();
        };
        (0..f.map.len())
            .filter_map(|id| {
                let field = FieldId::from_raw(id as u32);
                let t = f.levels[level.index()][field.index()];
                (t.misses > 0).then(|| (f.map.name(field), t.misses as f64))
            })
            .collect()
    }

    /// All conflict pairs with at least one eviction, ordered by
    /// (level, victim, evictor).
    pub fn conflict_pairs(&self) -> Vec<ConflictPair> {
        self.conflicts
            .iter()
            .map(|(&(level, victim, evictor), &count)| ConflictPair {
                level: if level == 0 { Level::L1 } else { Level::L2 },
                victim: RegionId::from_raw(victim),
                evictor: RegionId::from_raw(evictor),
                count,
            })
            .collect()
    }

    /// Byte-stable JSON encoding: regions in id order, conflicts in
    /// (level, victim, evictor) order, fixed field order throughout.
    /// When field attribution is enabled a `"fields"` section follows
    /// the conflicts; a region-only profile's encoding is unchanged
    /// byte-for-byte from before fields existed.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"regions\":[");
        for id in 0..self.map.len() {
            if id > 0 {
                out.push(',');
            }
            let name = self.map.name(RegionId::from_raw(id as u32));
            out.push_str(&format!("{{\"name\":{:?}", name));
            for level in [Level::L1, Level::L2] {
                let t = self.levels[level.index()][id];
                out.push_str(&format!(
                    ",\"{}\":{{\"accesses\":{},\"hits\":{},\"misses\":{},\"evictions\":{}}}",
                    level.label(),
                    t.accesses,
                    t.hits,
                    t.misses,
                    t.evictions
                ));
            }
            out.push('}');
        }
        out.push_str("],\"conflicts\":[");
        for (i, (&(level, victim, evictor), &count)) in self.conflicts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let level = if level == 0 { Level::L1 } else { Level::L2 };
            out.push_str(&format!(
                "{{\"level\":\"{}\",\"victim\":{:?},\"evictor\":{:?},\"count\":{}}}",
                level.label(),
                self.map.name(RegionId::from_raw(victim)),
                self.map.name(RegionId::from_raw(evictor)),
                count
            ));
        }
        out.push(']');
        if let Some(f) = self.fields.as_deref() {
            out.push_str(",\"fields\":[");
            for id in 0..f.map.len() {
                if id > 0 {
                    out.push(',');
                }
                let name = f.map.name(FieldId::from_raw(id as u32));
                out.push_str(&format!("{{\"name\":{name:?}"));
                for level in [Level::L1, Level::L2] {
                    let t = f.levels[level.index()][id];
                    out.push_str(&format!(
                        ",\"{}\":{{\"accesses\":{},\"hits\":{},\"misses\":{}}}",
                        level.label(),
                        t.accesses,
                        t.hits,
                        t.misses
                    ));
                }
                out.push('}');
            }
            out.push(']');
            for level in [Level::L1, Level::L2] {
                let t = f.unattributed[level.index()];
                out.push_str(&format!(
                    ",\"fields_unattributed_{}\":{{\"accesses\":{},\"hits\":{},\"misses\":{}}}",
                    level.label(),
                    t.accesses,
                    t.hits,
                    t.misses
                ));
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_region_map() -> Arc<RegionMap> {
        let mut map = RegionMap::new();
        map.register("tree", 0x1000, 0x2000);
        map.register("list", 0x3000, 0x4000);
        Arc::new(map)
    }

    #[test]
    fn accesses_and_evictions_accumulate_per_region() {
        let map = two_region_map();
        let tree = map.resolve(0x1000);
        let list = map.resolve(0x3000);
        let mut p = MissProfile::new(map);
        p.record_access(Level::L1, tree, true);
        p.record_access(Level::L1, tree, false);
        p.record_access(Level::L2, list, false);
        p.record_eviction(Level::L2, tree, list);
        p.record_eviction(Level::L2, tree, list);
        let t = p.tally(Level::L1, tree);
        assert_eq!((t.accesses, t.hits, t.misses), (2, 1, 1));
        assert_eq!(p.tally(Level::L2, tree).evictions, 2);
        let pairs = p.conflict_pairs();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].count, 2);
        assert_eq!(pairs[0].victim, tree);
        assert_eq!(pairs[0].evictor, list);
    }

    #[test]
    fn merge_sums_tallies_and_conflicts() {
        let map = two_region_map();
        let tree = map.resolve(0x1000);
        let list = map.resolve(0x3000);
        let mut a = MissProfile::new(Arc::clone(&map));
        let mut b = MissProfile::new(Arc::clone(&map));
        a.record_access(Level::L1, tree, false);
        b.record_access(Level::L1, tree, true);
        a.record_eviction(Level::L1, list, tree);
        b.record_eviction(Level::L1, list, tree);
        a.merge(&b);
        assert_eq!(a.totals(Level::L1).accesses, 2);
        assert_eq!(a.conflict_pairs()[0].count, 2);
    }

    fn node_field_map() -> Arc<FieldMap> {
        let mut fmap = FieldMap::new();
        let key = fmap.field_id("key");
        let left = fmap.field_id("left");
        let t = fmap.add_table(&[(key, 0, 8), (left, 8, 4)]);
        // Sixteen 16-byte nodes at 0x1000.
        fmap.add_extent(0x1000, 0x1100, 16, t);
        Arc::new(fmap)
    }

    #[test]
    fn field_tallies_resolve_through_the_field_map() {
        let map = two_region_map();
        let mut p = MissProfile::new(map);
        let fmap = node_field_map();
        p.enable_fields(Arc::clone(&fmap));
        p.record_field_access(Level::L1, 0x1000, false); // key of node 0
        p.record_field_access(Level::L1, 0x1000 + 3 * 16 + 8, true); // left of node 3
        p.record_field_access(Level::L1, 0x1000 + 12, false); // padding
        p.record_field_access(Level::L1, 0x9000, true); // outside
        let mut f = FieldMap::new();
        let key = f.field_id("key");
        let left = f.field_id("left");
        assert_eq!(p.field_tally(Level::L1, key).misses, 1);
        assert_eq!(p.field_tally(Level::L1, left).hits, 1);
        let un = p.field_unattributed(Level::L1);
        assert_eq!((un.accesses, un.hits, un.misses), (2, 1, 1));
        assert_eq!(p.field_weights(Level::L1), vec![("key", 1.0)]);
    }

    #[test]
    fn field_records_are_noops_without_enable() {
        let mut p = MissProfile::new(two_region_map());
        p.record_field_access(Level::L1, 0x1000, false);
        assert!(!p.fields_enabled());
        assert!(p.field_weights(Level::L1).is_empty());
    }

    #[test]
    fn merge_sums_field_tallies_over_a_shared_map() {
        let map = two_region_map();
        let fmap = node_field_map();
        let mut a = MissProfile::new(Arc::clone(&map));
        let mut b = MissProfile::new(map);
        a.enable_fields(Arc::clone(&fmap));
        b.enable_fields(Arc::clone(&fmap));
        a.record_field_access(Level::L2, 0x1000, false);
        b.record_field_access(Level::L2, 0x1010, false);
        a.merge(&b);
        let mut f = FieldMap::new();
        let key = f.field_id("key");
        assert_eq!(a.field_tally(Level::L2, key).misses, 2);
    }

    #[test]
    #[should_panic(expected = "field-attributing")]
    fn merging_mixed_field_enablement_panics() {
        let map = two_region_map();
        let mut a = MissProfile::new(Arc::clone(&map));
        let b = MissProfile::new(map);
        a.enable_fields(node_field_map());
        a.merge(&b);
    }

    #[test]
    fn json_without_fields_is_unchanged_and_with_fields_appends() {
        let map = two_region_map();
        let tree = map.resolve(0x1000);
        let mut plain = MissProfile::new(Arc::clone(&map));
        plain.record_access(Level::L1, tree, false);
        let plain_json = plain.to_json();
        assert!(plain_json.ends_with("],\"conflicts\":[]}"), "{plain_json}");

        let mut fielded = MissProfile::new(map);
        fielded.record_access(Level::L1, tree, false);
        fielded.enable_fields(node_field_map());
        fielded.record_field_access(Level::L1, 0x1000, false);
        let json = fielded.to_json();
        assert!(
            json.starts_with(plain_json.trim_end_matches('}')),
            "prefix preserved"
        );
        assert!(json.contains(
            "\"fields\":[{\"name\":\"key\",\"l1\":{\"accesses\":1,\"hits\":0,\"misses\":1}"
        ));
        assert!(json.contains("\"fields_unattributed_l1\":{\"accesses\":0"));
    }

    #[test]
    fn region_weights_borrow_from_the_map() {
        let map = two_region_map();
        let tree = map.resolve(0x1000);
        let mut p = MissProfile::new(map);
        p.record_access(Level::L1, tree, false);
        let w = p.region_weights(Level::L1);
        assert_eq!(w, vec![("tree", 1.0)]);
    }

    #[test]
    fn json_is_deterministic_and_ordered() {
        let map = two_region_map();
        let tree = map.resolve(0x1000);
        let list = map.resolve(0x3000);
        let mut p = MissProfile::new(map);
        p.record_access(Level::L1, tree, false);
        p.record_eviction(Level::L2, list, tree);
        let json = p.to_json();
        assert_eq!(json, p.to_json());
        assert!(json.starts_with("{\"regions\":[{\"name\":\"other\""));
        assert!(json
            .contains("{\"level\":\"l2\",\"victim\":\"list\",\"evictor\":\"tree\",\"count\":1}"));
    }
}
