//! Phase-level span tracing with chrome://tracing export.
//!
//! Coarse spans — one per sweep cell, shard worker, store generation,
//! replay epoch — are cheap enough to record unconditionally once a
//! tracer exists (one `Vec` push per span, thousands of spans per run
//! against billions of simulated accesses). The export is the Trace
//! Event Format's complete-event (`"ph":"X"`) flavour, loadable by
//! `chrome://tracing` and Perfetto.
//!
//! Timestamps are *caller-supplied* microseconds by default
//! ([`SpanTracer::record`]): deterministic inputs (simulated cycles,
//! logical epoch numbers) produce byte-stable traces that golden-file
//! tests can pin. For wall-clock profiling, [`SpanTracer::start`] /
//! [`SpanTracer::finish`] measure against a monotonic anchor created
//! with the tracer.

use std::time::Instant;

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Span {
    name: String,
    /// Category: chrome://tracing groups and filters by this
    /// ("sweep", "store", "shard", "replay", …).
    cat: &'static str,
    /// Thread id lane the span renders on.
    tid: u64,
    start_us: u64,
    dur_us: u64,
}

/// An in-flight wall-clock span returned by [`SpanTracer::start`].
#[derive(Debug)]
pub struct OpenSpan {
    name: String,
    cat: &'static str,
    tid: u64,
    started: Instant,
}

/// Collects spans and serializes them as chrome://tracing JSON.
///
/// # Example
///
/// ```
/// use cc_obs::SpanTracer;
///
/// let mut tracer = SpanTracer::new();
/// tracer.record("cell 0", "sweep", 0, 0, 1200);
/// tracer.record("cell 1", "sweep", 0, 1200, 900);
/// assert!(tracer.to_chrome_json().contains("\"ph\":\"X\""));
/// ```
#[derive(Debug)]
pub struct SpanTracer {
    spans: Vec<Span>,
    anchor: Instant,
}

impl Default for SpanTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanTracer {
    /// An empty tracer. The wall-clock anchor for [`SpanTracer::start`]
    /// is the moment of creation.
    pub fn new() -> Self {
        SpanTracer {
            spans: Vec::new(),
            anchor: Instant::now(),
        }
    }

    /// Records a completed span with caller-supplied timestamps
    /// (microseconds, any deterministic unit works). Spans may be
    /// recorded in any order; export sorts them.
    pub fn record(&mut self, name: &str, cat: &'static str, tid: u64, start_us: u64, dur_us: u64) {
        self.spans.push(Span {
            name: name.to_string(),
            cat,
            tid,
            start_us,
            dur_us,
        });
    }

    /// Opens a wall-clock span; pass the result to
    /// [`SpanTracer::finish`] to record it.
    pub fn start(&self, name: &str, cat: &'static str, tid: u64) -> OpenSpan {
        OpenSpan {
            name: name.to_string(),
            cat,
            tid,
            started: Instant::now(),
        }
    }

    /// Closes a wall-clock span opened by [`SpanTracer::start`].
    pub fn finish(&mut self, span: OpenSpan) {
        let start_us = span.started.duration_since(self.anchor).as_micros() as u64;
        let dur_us = span.started.elapsed().as_micros() as u64;
        self.spans.push(Span {
            name: span.name,
            cat: span.cat,
            tid: span.tid,
            start_us,
            dur_us,
        });
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Serializes every span as a chrome://tracing JSON object
    /// (`{"traceEvents":[...]}`), complete events only, fixed field
    /// order, spans sorted by (tid, start, name) — byte-stable for a
    /// given set of recorded spans.
    pub fn to_chrome_json(&self) -> String {
        let mut sorted: Vec<&Span> = self.spans.iter().collect();
        sorted.sort_by(|a, b| {
            (a.tid, a.start_us, &a.name, a.dur_us).cmp(&(b.tid, b.start_us, &b.name, b.dur_us))
        });
        let mut out = String::from("{\"traceEvents\":[");
        for (i, s) in sorted.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{:?},\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                s.name, s.cat, s.start_us, s.dur_us, s.tid
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_is_sorted_and_stable() {
        let mut t = SpanTracer::new();
        t.record("late", "sweep", 0, 500, 10);
        t.record("early", "sweep", 0, 100, 10);
        t.record("worker", "shard", 1, 0, 700);
        let json = t.to_chrome_json();
        assert_eq!(json, t.to_chrome_json());
        let early = json.find("early").unwrap();
        let late = json.find("late").unwrap();
        let worker = json.find("worker").unwrap();
        assert!(early < late && late < worker);
    }

    #[test]
    fn wall_clock_spans_record() {
        let mut t = SpanTracer::new();
        let s = t.start("epoch", "replay", 0);
        t.finish(s);
        assert_eq!(t.len(), 1);
        assert!(t.to_chrome_json().contains("\"name\":\"epoch\""));
    }

    #[test]
    fn empty_tracer_exports_empty_array() {
        assert_eq!(SpanTracer::new().to_chrome_json(), "{\"traceEvents\":[]}");
    }
}
