//! **cc-obs** — the observability layer of the cache-conscious
//! reproduction.
//!
//! The paper's tools are profile-driven: `ccmalloc`'s coloring and the
//! Section 5 analytic framework both consume per-structure access and
//! miss data. The simulator computes exactly that information and then
//! aggregates it away into whole-run [`CacheStats`]-style totals. This
//! crate keeps it:
//!
//! * [`region`] — names address ranges ([`RegionMap`]) so the simulator
//!   can attribute each access to the structure, heap arena, or ccmorph
//!   subtree that owns the address ([`RegionId`]);
//! * [`attrib`] — accumulates per-region, per-level hit/miss/eviction
//!   tallies and *conflict pairs* (which two regions evict each other)
//!   in a [`MissProfile`];
//! * [`span`] — a [`SpanTracer`] for phase-level timing (sweep cells,
//!   shard workers, store generate/hit, replay epochs) exported as
//!   chrome://tracing JSON;
//! * [`registry`] — a [`MetricsRegistry`] that absorbs the degradation
//!   counters scattered across the workspace (heap fallbacks, sweep
//!   retries, shard serial-fallbacks, store insert/evict/hit) behind one
//!   byte-stable JSON snapshot.
//!
//! cc-obs is a dependency-free leaf crate: everything above it in the
//! workspace (sim, heap, sweep, bench, fault, audit) can feed it
//! without cycles. All JSON encodings are hand-rolled with a fixed
//! field order so golden-file tests can pin them byte-for-byte.
//!
//! [`CacheStats`]: https://docs.rs/cc-sim
//! [`RegionMap`]: region::RegionMap
//! [`RegionId`]: region::RegionId
//! [`MissProfile`]: attrib::MissProfile
//! [`SpanTracer`]: span::SpanTracer
//! [`MetricsRegistry`]: registry::MetricsRegistry

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrib;
pub mod field;
pub mod region;
pub mod registry;
pub mod span;

pub use attrib::{Level, MissProfile, RegionTally};
pub use field::{FieldId, FieldMap};
pub use region::{RegionId, RegionMap};
pub use registry::MetricsRegistry;
pub use span::SpanTracer;
