//! Region naming: mapping simulated addresses to the structures that
//! own them.
//!
//! A *region* is a named, half-open address range `[start, end)` in the
//! simulated virtual address space — a structure kind ("ctree nodes"),
//! a heap arena, or a ccmorph subtree. The simulator tags each access
//! with the [`RegionId`] that [`RegionMap::resolve`] returns for its
//! address, and [`crate::attrib::MissProfile`] aggregates per-region
//! tallies under those ids.
//!
//! Region `0` is always the catch-all `"other"` region: addresses that
//! fall outside every registered range (stack-less workloads still
//! touch trace buffers, globals, …) attribute there rather than being
//! dropped, so per-region totals always sum to the whole-run totals.

/// Identifier of a registered region. `RegionId::OTHER` (id 0) is the
/// catch-all for unregistered addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(u32);

impl RegionId {
    /// The catch-all region every [`RegionMap`] starts with.
    pub const OTHER: RegionId = RegionId(0);

    /// The raw index, usable to index per-region tally vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw 32-bit id.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from its raw value. Ids are only meaningful
    /// against the [`RegionMap`] that minted them.
    pub(crate) fn from_raw(raw: u32) -> RegionId {
        RegionId(raw)
    }
}

/// One registered address range.
#[derive(Clone, Copy, Debug)]
struct Range {
    start: u64,
    /// Exclusive.
    end: u64,
    region: u32,
}

/// A set of named, non-overlapping address ranges with binary-search
/// resolution.
///
/// # Example
///
/// ```
/// use cc_obs::region::{RegionId, RegionMap};
///
/// let mut map = RegionMap::new();
/// let tree = map.register("ctree", 0x1000_0000, 0x1004_0000);
/// assert_eq!(map.resolve(0x1000_0040), tree);
/// assert_eq!(map.resolve(0x42), RegionId::OTHER);
/// assert_eq!(map.name(tree), "ctree");
/// ```
#[derive(Clone, Debug)]
pub struct RegionMap {
    /// Index = region id. `names[0]` is always `"other"`.
    names: Vec<String>,
    /// Sorted by `start`; ranges never overlap.
    ranges: Vec<Range>,
}

impl Default for RegionMap {
    fn default() -> Self {
        Self::new()
    }
}

impl RegionMap {
    /// An empty map: every address resolves to [`RegionId::OTHER`].
    pub fn new() -> Self {
        RegionMap {
            names: vec!["other".to_string()],
            ranges: Vec::new(),
        }
    }

    /// Registers `[start, end)` under `name` and returns its id.
    ///
    /// Multiple ranges may share one name — registering an existing
    /// name adds the range to that region instead of minting a new id,
    /// so a segregated heap can file every arena extent under one
    /// "heap" region, or one region per size class.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or overlaps a registered range —
    /// regions partition the address space by construction, and an
    /// overlap would make attribution ambiguous.
    pub fn register(&mut self, name: &str, start: u64, end: u64) -> RegionId {
        assert!(start < end, "empty region {name:?}: {start:#x}..{end:#x}");
        let region = match self.names.iter().position(|n| n == name) {
            Some(i) => i as u32,
            None => {
                self.names.push(name.to_string());
                (self.names.len() - 1) as u32
            }
        };
        let at = self.ranges.partition_point(|r| r.start < start);
        let fits_left = at == 0 || self.ranges[at - 1].end <= start;
        let fits_right = at == self.ranges.len() || end <= self.ranges[at].start;
        assert!(
            fits_left && fits_right,
            "region {name:?} {start:#x}..{end:#x} overlaps a registered range",
        );
        self.ranges.insert(at, Range { start, end, region });
        RegionId(region)
    }

    /// The region owning `addr`, or [`RegionId::OTHER`].
    pub fn resolve(&self, addr: u64) -> RegionId {
        let idx = self.ranges.partition_point(|r| r.start <= addr);
        match idx.checked_sub(1).map(|i| self.ranges[i]) {
            Some(r) if addr < r.end => RegionId(r.region),
            _ => RegionId::OTHER,
        }
    }

    /// The name a region was registered under.
    pub fn name(&self, region: RegionId) -> &str {
        &self.names[region.index()]
    }

    /// Number of distinct regions, including `"other"`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether only the catch-all region exists.
    pub fn is_empty(&self) -> bool {
        self.names.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_hits_registered_ranges_and_falls_back() {
        let mut map = RegionMap::new();
        let a = map.register("a", 0x100, 0x200);
        let b = map.register("b", 0x300, 0x400);
        assert_eq!(map.resolve(0x100), a);
        assert_eq!(map.resolve(0x1ff), a);
        assert_eq!(map.resolve(0x200), RegionId::OTHER);
        assert_eq!(map.resolve(0x3a0), b);
        assert_eq!(map.resolve(0), RegionId::OTHER);
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn shared_name_shares_one_id() {
        let mut map = RegionMap::new();
        let a1 = map.register("arena", 0x100, 0x200);
        let a2 = map.register("arena", 0x500, 0x600);
        assert_eq!(a1, a2);
        assert_eq!(map.resolve(0x580), a1);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn ranges_out_of_order_still_resolve() {
        let mut map = RegionMap::new();
        let hi = map.register("hi", 0x1000, 0x2000);
        let lo = map.register("lo", 0x10, 0x20);
        assert_eq!(map.resolve(0x18), lo);
        assert_eq!(map.resolve(0x1fff), hi);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlap_is_rejected() {
        let mut map = RegionMap::new();
        map.register("a", 0x100, 0x200);
        map.register("b", 0x1ff, 0x300);
    }

    #[test]
    fn boundary_addresses_resolve_exactly() {
        let mut map = RegionMap::new();
        // Two adjacent ranges sharing a seam at 0x200, then a gap.
        let a = map.register("a", 0x100, 0x200);
        let b = map.register("b", 0x200, 0x280);
        assert_eq!(map.resolve(0x0ff), RegionId::OTHER, "one below a start");
        assert_eq!(map.resolve(0x100), a, "inclusive start");
        assert_eq!(map.resolve(0x1ff), a, "last byte of a");
        assert_eq!(map.resolve(0x200), b, "seam belongs to the right range");
        assert_eq!(map.resolve(0x27f), b, "last byte of b");
        assert_eq!(map.resolve(0x280), RegionId::OTHER, "end is exclusive");
        assert_eq!(map.resolve(u64::MAX), RegionId::OTHER);
    }

    #[test]
    fn u64_extremes_resolve() {
        let mut map = RegionMap::new();
        let lo = map.register("lo", 0, 1);
        let hi = map.register("hi", u64::MAX - 1, u64::MAX);
        assert_eq!(map.resolve(0), lo);
        assert_eq!(map.resolve(1), RegionId::OTHER);
        assert_eq!(map.resolve(u64::MAX - 1), hi);
        assert_eq!(map.resolve(u64::MAX), RegionId::OTHER);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// The O(n) oracle `resolve` must agree with.
    fn resolve_linear(ranges: &[(u64, u64, RegionId)], addr: u64) -> RegionId {
        ranges
            .iter()
            .find(|&&(s, e, _)| s <= addr && addr < e)
            .map(|&(_, _, id)| id)
            .unwrap_or(RegionId::OTHER)
    }

    proptest! {
        #[test]
        fn resolve_matches_linear_scan(
            raw in proptest::collection::vec((0u64..0x4000, 1u64..0x200), 0..12),
            probes in proptest::collection::vec(0u64..0x5000, 32..33),
        ) {
            let mut map = RegionMap::new();
            let mut ranges: Vec<(u64, u64, RegionId)> = Vec::new();
            for (i, &(start, len)) in raw.iter().enumerate() {
                let end = start + len;
                // Keep only ranges that don't overlap what we kept so far;
                // register panics on overlap by design.
                if ranges.iter().any(|&(s, e, _)| start < e && s < end) {
                    continue;
                }
                let id = map.register(&format!("r{i}"), start, end);
                ranges.push((start, end, id));
            }
            for &addr in &probes {
                prop_assert_eq!(map.resolve(addr), resolve_linear(&ranges, addr));
            }
            // Probe every boundary of every kept range, inside and out.
            for &(s, e, _) in &ranges {
                for addr in [s, s.saturating_sub(1), e - 1, e] {
                    prop_assert_eq!(map.resolve(addr), resolve_linear(&ranges, addr));
                }
            }
        }
    }
}
