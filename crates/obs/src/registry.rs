//! The unified metrics registry.
//!
//! PR 3's graceful-degradation work left the workspace with good
//! counters in scattered places: `HeapStats::fallback_allocations` and
//! `degraded_hints`, `Sweep`'s `CellOutcome` retries, the sharded
//! replayer's serial-fallback and lost-lane counts, and the trace
//! store's insert/evict/hit counters. Each producer exports into one
//! [`MetricsRegistry`] under a namespaced key (`heap.fallback_allocations`,
//! `store.hits`, …), and one snapshot — byte-stable JSON, keys sorted —
//! serves the `cc-profile` CLI, the `CC_OBS_OUT` hook in the figure
//! binaries, and the fault-matrix harness.
//!
//! Values are `u64` counters/gauges: everything the degradation
//! contract tracks is a count, and integer-only values keep the JSON
//! encoding trivially byte-stable.

use std::collections::BTreeMap;

/// An ordered map of named `u64` metrics.
///
/// # Example
///
/// ```
/// use cc_obs::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// reg.bump("store.hits", 3);
/// reg.set("heap.degraded_hints", 1);
/// assert_eq!(reg.to_json(), "{\"heap.degraded_hints\":1,\"store.hits\":3}");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    entries: BTreeMap<String, u64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `key` to `value`, overwriting any previous value.
    pub fn set(&mut self, key: &str, value: u64) {
        self.entries.insert(key.to_string(), value);
    }

    /// Adds `delta` to `key`, creating it at zero first if absent.
    pub fn bump(&mut self, key: &str, delta: u64) {
        *self.entries.entry(key.to_string()).or_insert(0) += delta;
    }

    /// The current value of `key`, if set.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.entries.get(key).copied()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates metrics in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Folds another registry into this one, summing shared keys —
    /// used to aggregate per-cell or per-scenario registries.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.entries {
            *self.entries.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Byte-stable JSON snapshot: one flat object, keys sorted
    /// lexicographically, no whitespace.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{k:?}:{v}"));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_bump_get() {
        let mut r = MetricsRegistry::new();
        r.bump("a", 2);
        r.bump("a", 3);
        r.set("b", 7);
        assert_eq!(r.get("a"), Some(5));
        assert_eq!(r.get("b"), Some(7));
        assert_eq!(r.get("c"), None);
    }

    #[test]
    fn json_sorted_and_stable_regardless_of_insertion_order() {
        let mut r1 = MetricsRegistry::new();
        r1.set("z.last", 1);
        r1.set("a.first", 2);
        let mut r2 = MetricsRegistry::new();
        r2.set("a.first", 2);
        r2.set("z.last", 1);
        assert_eq!(r1.to_json(), r2.to_json());
        assert_eq!(r1.to_json(), "{\"a.first\":2,\"z.last\":1}");
    }

    #[test]
    fn merge_sums_shared_keys() {
        let mut a = MetricsRegistry::new();
        a.set("x", 1);
        let mut b = MetricsRegistry::new();
        b.set("x", 2);
        b.set("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), Some(3));
        assert_eq!(a.get("y"), Some(3));
    }

    #[test]
    fn empty_registry_is_empty_object() {
        assert_eq!(MetricsRegistry::new().to_json(), "{}");
    }
}
