//! Field naming: resolving simulated addresses *below* region
//! granularity, to the individual struct field they touch.
//!
//! A [`RegionMap`](crate::RegionMap) answers "whose address is this?";
//! a [`FieldMap`] answers "which *field* of that object?". It holds:
//!
//! * a set of interned **field names** ([`FieldId`]s),
//! * **span tables** — per-layout descriptions of which byte offsets
//!   within one object (or one array element) belong to which field,
//! * **extents** — address ranges occupied by objects of a given span
//!   table, each with a *stride*: the offset within the object is
//!   `(addr - start) % stride`, so one extent can describe a whole
//!   uniform arena (an SoA array, a dense pool) and per-object extents
//!   simply use `stride == object size`.
//!
//! Extents are registered from heap snapshots (see `cc_heap::obs`), so
//! resolution follows the *object extents the allocator reported* — the
//! same source of truth the auditor uses. Addresses that fall outside
//! every extent (or in padding between spans) resolve to `None` and are
//! tallied as unattributed, keeping field totals honest.

/// Identifier of an interned field name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldId(u32);

impl FieldId {
    /// The raw index, usable to index per-field tally vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw 32-bit id.
    pub fn raw(self) -> u32 {
        self.0
    }

    pub(crate) fn from_raw(raw: u32) -> FieldId {
        FieldId(raw)
    }
}

/// One field's byte span within an object of its span table.
#[derive(Clone, Copy, Debug)]
struct FieldSpan {
    offset: u64,
    size: u64,
    field: u32,
}

/// One registered object extent.
#[derive(Clone, Copy, Debug)]
struct Extent {
    start: u64,
    /// Exclusive.
    end: u64,
    /// Offsets repeat with this period (the object or element size).
    stride: u64,
    /// Index into the span tables.
    table: u32,
}

/// Field-level address resolution: interned names, span tables, and
/// strided object extents.
///
/// # Example
///
/// ```
/// use cc_obs::field::FieldMap;
///
/// let mut map = FieldMap::new();
/// let key = map.field_id("key");
/// let left = map.field_id("left");
/// // A 16-byte node: key at 0..8, left at 8..12 (12..16 is padding).
/// let node = map.add_table(&[(key, 0, 8), (left, 8, 4)]);
/// // Ten such nodes packed at 0x1000.
/// map.add_extent(0x1000, 0x1000 + 160, 16, node);
/// assert_eq!(map.resolve(0x1000), Some(key));
/// assert_eq!(map.resolve(0x1000 + 3 * 16 + 8), Some(left));
/// assert_eq!(map.resolve(0x1000 + 12), None, "padding");
/// assert_eq!(map.resolve(0x42), None, "outside every extent");
/// ```
#[derive(Clone, Debug, Default)]
pub struct FieldMap {
    /// Index = field id.
    names: Vec<String>,
    /// Span tables; each sorted by offset, non-overlapping.
    tables: Vec<Vec<FieldSpan>>,
    /// Sorted by `start`; extents never overlap.
    extents: Vec<Extent>,
}

impl FieldMap {
    /// An empty map: every address resolves to `None`.
    pub fn new() -> Self {
        FieldMap::default()
    }

    /// Interns `name`, returning its id (existing names return the id
    /// they were first given — tallies for one field name aggregate
    /// across layouts).
    pub fn field_id(&mut self, name: &str) -> FieldId {
        match self.names.iter().position(|n| n == name) {
            Some(i) => FieldId(i as u32),
            None => {
                self.names.push(name.to_string());
                FieldId((self.names.len() - 1) as u32)
            }
        }
    }

    /// Registers a span table — `(field, offset, size)` byte spans
    /// within one object — and returns its index for
    /// [`FieldMap::add_extent`].
    ///
    /// # Panics
    ///
    /// Panics if a span is empty or two spans overlap: field spans
    /// partition the object by construction.
    pub fn add_table(&mut self, spans: &[(FieldId, u64, u64)]) -> u32 {
        let mut table: Vec<FieldSpan> = spans
            .iter()
            .map(|&(field, offset, size)| {
                assert!(size > 0, "empty field span at offset {offset:#x}");
                FieldSpan {
                    offset,
                    size,
                    field: field.raw(),
                }
            })
            .collect();
        table.sort_by_key(|s| s.offset);
        for pair in table.windows(2) {
            assert!(
                pair[0].offset + pair[0].size <= pair[1].offset,
                "overlapping field spans at {:#x} and {:#x}",
                pair[0].offset,
                pair[1].offset,
            );
        }
        self.tables.push(table);
        (self.tables.len() - 1) as u32
    }

    /// Registers the object extent `[start, end)` whose byte offsets
    /// repeat with period `stride` and are described by span table
    /// `table`. A single object passes `stride == end - start`; a dense
    /// pool or SoA array passes its element stride.
    ///
    /// # Panics
    ///
    /// Panics on an empty extent, a zero stride, an unknown table, or
    /// an overlap with a registered extent.
    pub fn add_extent(&mut self, start: u64, end: u64, stride: u64, table: u32) {
        assert!(start < end, "empty extent {start:#x}..{end:#x}");
        assert!(stride > 0, "extent stride must be nonzero");
        assert!((table as usize) < self.tables.len(), "unknown span table");
        let at = self.extents.partition_point(|e| e.start < start);
        let fits_left = at == 0 || self.extents[at - 1].end <= start;
        let fits_right = at == self.extents.len() || end <= self.extents[at].start;
        assert!(
            fits_left && fits_right,
            "extent {start:#x}..{end:#x} overlaps a registered extent",
        );
        self.extents.insert(
            at,
            Extent {
                start,
                end,
                stride,
                table,
            },
        );
    }

    /// The field owning `addr`, or `None` if the address is outside
    /// every extent or in padding between field spans.
    pub fn resolve(&self, addr: u64) -> Option<FieldId> {
        let idx = self.extents.partition_point(|e| e.start <= addr);
        let e = self.extents[idx.checked_sub(1)?];
        if addr >= e.end {
            return None;
        }
        let off = (addr - e.start) % e.stride;
        let table = &self.tables[e.table as usize];
        let s = table[table.partition_point(|s| s.offset <= off).checked_sub(1)?];
        (off < s.offset + s.size).then_some(FieldId(s.field))
    }

    /// The name a field was interned under.
    pub fn name(&self, field: FieldId) -> &str {
        &self.names[field.index()]
    }

    /// Number of interned field names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no fields are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_extent_resolves_every_element() {
        let mut map = FieldMap::new();
        let key = map.field_id("key");
        let links = map.field_id("links");
        let t = map.add_table(&[(key, 0, 8), (links, 8, 8)]);
        map.add_extent(0x100, 0x100 + 64, 16, t);
        for i in 0..4u64 {
            assert_eq!(map.resolve(0x100 + i * 16), Some(key));
            assert_eq!(map.resolve(0x100 + i * 16 + 7), Some(key));
            assert_eq!(map.resolve(0x100 + i * 16 + 8), Some(links));
            assert_eq!(map.resolve(0x100 + i * 16 + 15), Some(links));
        }
        assert_eq!(map.resolve(0x100 + 64), None, "end is exclusive");
        assert_eq!(map.resolve(0xff), None);
    }

    #[test]
    fn interning_shares_ids_across_tables() {
        let mut map = FieldMap::new();
        let a1 = map.field_id("key");
        let t1 = map.add_table(&[(a1, 0, 8)]);
        let a2 = map.field_id("key");
        assert_eq!(a1, a2);
        let t2 = map.add_table(&[(a2, 0, 4)]);
        map.add_extent(0x100, 0x110, 8, t1);
        map.add_extent(0x200, 0x210, 4, t2);
        assert_eq!(map.resolve(0x104), Some(a1));
        assert_eq!(map.resolve(0x203), Some(a1));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn padding_between_spans_is_unattributed() {
        let mut map = FieldMap::new();
        let a = map.field_id("a");
        let b = map.field_id("b");
        let t = map.add_table(&[(a, 0, 2), (b, 8, 4)]);
        map.add_extent(0x0, 0x10, 16, t);
        assert_eq!(map.resolve(0x1), Some(a));
        assert_eq!(map.resolve(0x2), None, "padding after a");
        assert_eq!(map.resolve(0x8), Some(b));
        assert_eq!(map.resolve(0xc), None, "trailing padding");
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_extents_are_rejected() {
        let mut map = FieldMap::new();
        let a = map.field_id("a");
        let t = map.add_table(&[(a, 0, 4)]);
        map.add_extent(0x100, 0x200, 4, t);
        map.add_extent(0x1ff, 0x300, 4, t);
    }

    #[test]
    #[should_panic(expected = "overlapping field spans")]
    fn overlapping_spans_are_rejected() {
        let mut map = FieldMap::new();
        let a = map.field_id("a");
        let b = map.field_id("b");
        map.add_table(&[(a, 0, 8), (b, 4, 4)]);
    }
}
