//! Golden-file tests pinning every cc-obs export format byte-for-byte.
//!
//! The registry snapshot, the chrome://tracing span export, and the
//! attribution profile are consumed by external tooling (CI artifact
//! diffing, Perfetto, the fault matrix's `metrics:` line), so their
//! encodings are contracts: fixed field order, sorted keys, no
//! whitespace. These tests compare against committed files under
//! `tests/golden/`; set `CC_BLESS=1` to regenerate them after an
//! intentional format change.

use cc_obs::attrib::Level;
use cc_obs::{MetricsRegistry, MissProfile, RegionMap, SpanTracer};
use std::path::PathBuf;
use std::sync::Arc;

fn check(name: &str, actual: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var_os("CC_BLESS").is_some() {
        std::fs::write(&path, actual).expect("bless golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with CC_BLESS=1", name));
    assert_eq!(
        actual,
        expected.trim_end_matches('\n'),
        "{name} drifted from its golden file; if the format change is \
         intentional, regenerate with CC_BLESS=1"
    );
}

#[test]
fn registry_json_matches_golden() {
    let mut r = MetricsRegistry::new();
    r.set("sweep.cells", 4);
    r.bump("heap.fallback_allocations", 2);
    r.bump("heap.fallback_allocations", 1);
    r.set("store.hits", 9);
    check("registry.json", &r.to_json());
}

#[test]
fn chrome_trace_matches_golden() {
    let mut t = SpanTracer::new();
    // Recorded out of order on purpose: export sorts by (tid, start).
    t.record("segment[epoch 0 @ 0]", "replay", 1, 0, 900);
    t.record("generate", "store", 0, 1200, 650);
    t.record("cell 0", "sweep", 0, 0, 1200);
    check("trace.json", &t.to_chrome_json());
}

#[test]
fn attribution_profile_matches_golden() {
    let mut map = RegionMap::new();
    let tree = map.register("tree", 0x1000, 0x2000);
    let list = map.register("list", 0x3000, 0x4000);
    let mut p = MissProfile::new(Arc::new(map));
    p.record_access(Level::L1, tree, false);
    p.record_access(Level::L1, list, true);
    p.record_access(Level::L2, tree, false);
    p.record_eviction(Level::L1, tree, list);
    p.record_eviction(Level::L1, tree, list);
    p.record_eviction(Level::L2, list, tree);
    check("attrib.json", &p.to_json());
}
