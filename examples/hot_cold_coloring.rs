//! Coloring under the microscope: watch conflict misses disappear.
//!
//! This example isolates the paper's Section 2.2 technique from
//! everything else. A workload alternates between a small *hot* working
//! set (touched constantly) and a large *cold* stream (touched once each)
//! — the access pattern of a tree's top levels vs its fringe. Laid out
//! naively, the cold stream keeps evicting the hot set from the
//! direct-mapped L2; laid out with [`ColoredSpace`], the hot set lives in
//! reserved cache sets that cold data cannot map to.
//!
//! Run with: `cargo run --release --example hot_cold_coloring`

use cache_conscious::core::color::ColoredSpace;
use cache_conscious::heap::VirtualSpace;
use cache_conscious::sim::event::EventSink;
use cache_conscious::sim::{MachineConfig, MemorySink};

const HOT_ELEMS: u64 = 8_000;
const COLD_ELEMS: u64 = 100_000;
const ELEM: u64 = 64;
const ROUNDS: u64 = 50;

fn run(hot: &[u64], cold: &[u64], machine: &MachineConfig) -> (u64, f64) {
    let mut sink = MemorySink::new(*machine);
    for r in 0..ROUNDS {
        // Touch the whole hot set, then a slice of the cold stream —
        // interleaved like a search touching the root region then fringe.
        for &h in hot {
            sink.load(h, ELEM as u32);
        }
        let chunk = cold.len() as u64 / ROUNDS;
        for &c in &cold[(r * chunk) as usize..((r + 1) * chunk) as usize] {
            sink.load(c, ELEM as u32);
        }
    }
    let l2 = sink.system().l2_stats();
    (sink.memory_cycles(), l2.miss_rate())
}

fn main() {
    let machine = MachineConfig::ultrasparc_e5000();
    println!(
        "hot set: {HOT_ELEMS} x {ELEM} B = {} KB (fits easily in the 1 MB L2)\n\
         cold stream: {COLD_ELEMS} x {ELEM} B = {} MB, touched once each\n",
        HOT_ELEMS * ELEM / 1024,
        COLD_ELEMS * ELEM / (1 << 20)
    );

    // Naive: hot and cold interleaved in one flat region.
    let mut vs = VirtualSpace::new(machine.page_bytes);
    let base = vs.alloc_bytes((HOT_ELEMS + COLD_ELEMS) * ELEM);
    let hot: Vec<u64> = (0..HOT_ELEMS).map(|i| base + i * ELEM).collect();
    let cold: Vec<u64> = (0..COLD_ELEMS)
        .map(|i| base + (HOT_ELEMS + i) * ELEM)
        .collect();
    let (naive_cycles, naive_l2) = run(&hot, &cold, &machine);

    // Colored: hot elements in the reserved eighth of the cache.
    let mut vs2 = VirtualSpace::new(machine.page_bytes);
    let mut cs = ColoredSpace::new(
        &mut vs2,
        machine.l2,
        machine.page_bytes,
        0.5,
        (HOT_ELEMS + COLD_ELEMS) * ELEM,
    );
    let hot2: Vec<u64> = (0..HOT_ELEMS).map(|_| cs.alloc_hot(ELEM)).collect();
    let cold2: Vec<u64> = (0..COLD_ELEMS).map(|_| cs.alloc_cold(ELEM)).collect();
    let (cc_cycles, cc_l2) = run(&hot2, &cold2, &machine);

    println!("{:<28} {:>14} {:>14}", "", "naive", "colored (p=C/2)");
    println!("{:<28} {naive_cycles:>14} {cc_cycles:>14}", "memory cycles");
    println!("{:<28} {naive_l2:>14.4} {cc_l2:>14.4}", "L2 miss rate");
    println!(
        "\nspeedup from coloring alone: {:.2}x — no data was moved closer together,\n\
         the hot set simply became impossible to evict (paper Figure 2).",
        naive_cycles as f64 / cc_cycles as f64
    );
}
