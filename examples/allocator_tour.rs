//! A tour of `ccmalloc`: how the three block-selection strategies place a
//! churning linked list, and what that does to walk time and memory.
//!
//! This is the paper's Figure 4 scenario (`health`'s `addList`): cells are
//! appended with the predecessor as the allocation hint, while random
//! removals fragment the heap. The tour prints, for `malloc` and each
//! `ccmalloc` strategy: how many consecutive list cells share an L2 cache
//! block, the simulated cycles for a full walk, and the heap footprint.
//!
//! Run with: `cargo run --release --example allocator_tour`

use cache_conscious::core::rng::SplitMix64;
use cache_conscious::heap::{Allocator, CcMalloc, Malloc, Strategy};
use cache_conscious::sim::event::NullSink;
use cache_conscious::sim::{MachineConfig, MemorySink};
use cache_conscious::trees::list::DList;

const CELLS: u64 = 30_000;
const CHURN: u64 = 15_000;

fn exercise<A: Allocator>(heap: &mut A, machine: &MachineConfig) -> (f64, u64, u64) {
    let mut rng = SplitMix64::new(1234);
    let mut list = DList::new();
    let mut ids = Vec::new();
    for i in 0..CELLS {
        ids.push(list.push_back(i, heap, &mut NullSink, true));
    }
    // Churn: remove a random survivor, append a replacement.
    for i in 0..CHURN {
        let pick = rng.below(ids.len() as u64) as usize;
        let id = ids.swap_remove(pick);
        list.remove(id, heap, &mut NullSink);
        ids.push(list.push_back(CELLS + i, heap, &mut NullSink, true));
    }

    // How well did placement survive the churn? Count adjacent cells
    // sharing a 64-byte L2 block.
    let cell_ids = list.ids();
    let shared = cell_ids
        .windows(2)
        .filter(|w| list.addr_of(w[0]) / 64 == list.addr_of(w[1]) / 64)
        .count();
    let share_pct = 100.0 * shared as f64 / (cell_ids.len() - 1) as f64;

    // Walk cost on a cold cache.
    let mut sink = MemorySink::new(*machine);
    list.walk(&mut sink, false);
    (
        share_pct,
        sink.memory_cycles(),
        heap.stats().footprint_bytes(),
    )
}

fn main() {
    let machine = MachineConfig::ultrasparc_e5000();
    println!("{CELLS} appended cells, {CHURN} random remove+append churns, hint = predecessor\n");
    println!(
        "{:<22} {:>16} {:>14} {:>12}",
        "allocator", "neighbours/block", "walk cycles", "footprint"
    );

    let mut malloc = Malloc::new(machine.page_bytes);
    let (s, w, f) = exercise(&mut malloc, &machine);
    println!("{:<22} {s:>15.1}% {w:>14} {f:>12}", "malloc");

    for strat in Strategy::ALL {
        let mut heap = CcMalloc::new(&machine, strat);
        let (s, w, f) = exercise(&mut heap, &machine);
        println!(
            "{:<22} {s:>15.1}% {w:>14} {f:>12}",
            format!("ccmalloc {}", strat.label())
        );
    }

    println!(
        "\nnew-block keeps cache blocks open for future same-hint calls, so chain\n\
         neighbours co-locate best — the paper found it consistently strongest\n\
         (Section 4.4), at a small memory cost."
    );
}
