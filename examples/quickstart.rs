//! Quickstart: see clustering and coloring cut a tree's miss rate.
//!
//! Builds a binary search tree four times the simulated L2, searches it
//! under the naive (random) layout and under the `ccmorph`ed C-tree
//! layout, and prints the measured miss rates, the Section 5.1 access
//! times, and the speedup — next to what the paper's analytic model
//! predicts for exactly this configuration.
//!
//! Run with: `cargo run --release --example quickstart`

use cache_conscious::core::ccmorph::CcMorphParams;
use cache_conscious::core::cluster::Order;
use cache_conscious::core::rng::SplitMix64;
use cache_conscious::heap::VirtualSpace;
use cache_conscious::model::ctree::predicted_speedup;
use cache_conscious::sim::{MachineConfig, MemorySink};
use cache_conscious::trees::bst::Bst;
use cache_conscious::trees::BST_NODE_BYTES;

const KEYS: u64 = (1 << 18) - 1;
const SEARCHES: u64 = 100_000;

fn measure(tree: &Bst, machine: &MachineConfig) -> (f64, f64, f64) {
    let mut sink = MemorySink::new(*machine);
    let mut rng = SplitMix64::new(42);
    // Warm up past the cold-start misses (the paper's "transient"), then
    // measure steady state.
    for _ in 0..SEARCHES / 4 {
        tree.search(2 * rng.below(KEYS), &mut sink, false);
    }
    sink.reset_stats();
    for _ in 0..SEARCHES {
        tree.search(2 * rng.below(KEYS), &mut sink, false);
    }
    let l1 = sink.system().l1_stats().miss_rate();
    let l2 = sink.system().l2_stats().miss_rate();
    let cycles_per_search =
        (sink.memory_cycles() as f64 + sink.insts() as f64 / 4.0) / SEARCHES as f64;
    (l1, l2, cycles_per_search)
}

fn main() {
    let machine = MachineConfig::ultrasparc_e5000();
    println!(
        "tree: {KEYS} keys x {BST_NODE_BYTES} B = {:.1} MB; L2 = 1 MB direct-mapped (Sun E5000)",
        (KEYS * BST_NODE_BYTES) as f64 / (1 << 20) as f64
    );

    let mut tree = Bst::build_complete(KEYS);
    tree.layout_sequential(Order::Random { seed: 7 });
    let (l1n, l2n, tn) = measure(&tree, &machine);
    println!("\nnaive (randomly clustered) layout:");
    println!("  L1 miss rate {l1n:.3}   L2 miss rate {l2n:.3}   cycles/search {tn:.0}");

    let mut vs = VirtualSpace::new(machine.page_bytes);
    tree.morph(
        &mut vs,
        &CcMorphParams::clustering_and_coloring(&machine, BST_NODE_BYTES),
    );
    let (l1c, l2c, tc) = measure(&tree, &machine);
    println!("transparent C-tree (ccmorph: subtree clustering + coloring):");
    println!("  L1 miss rate {l1c:.3}   L2 miss rate {l2c:.3}   cycles/search {tc:.0}");

    let model = predicted_speedup(KEYS, machine.l2, BST_NODE_BYTES, 0.5, &machine.latency);
    println!(
        "\nspeedup: {:.2}x measured, {model:.2}x predicted by the Section 5 model",
        tn / tc
    );
}
