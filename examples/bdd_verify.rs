//! Formal verification on the simulated heap: prove two circuit
//! implementations equivalent with the mini-VIS ROBDD engine, comparing
//! `malloc` against `ccmalloc` for the BDD node placement.
//!
//! The circuits are two implementations of a 10-bit "is x < y" comparator:
//! a ripple-style chain and a subtract-and-test formulation. Canonical
//! BDDs make equivalence checking a pointer comparison; the interesting
//! part for this reproduction is the *memory behaviour* of building and
//! querying the diagrams.
//!
//! Run with: `cargo run --release --example bdd_verify`

use cache_conscious::apps::vis::Bdd;
use cache_conscious::heap::{Allocator, CcMalloc, Malloc, Strategy};
use cache_conscious::sim::{MachineConfig, Pipeline, PipelineConfig};

const BITS: u32 = 10;

/// x < y, ripple formulation: scan from the most significant bit.
/// lt_i = (!x_i & y_i) | ((x_i == y_i) & lt_{i+1})
fn less_than_ripple<A: Allocator>(bdd: &mut Bdd, heap: &mut A, pipe: &mut Pipeline) -> u32 {
    // Variable 2i = x_i, 2i+1 = y_i (interleaved: the good ordering).
    let mut lt = cache_conscious::apps::vis::FALSE;
    for i in 0..BITS {
        let x = bdd.var(2 * i, heap, pipe);
        let y = bdd.var(2 * i + 1, heap, pipe);
        let nx = bdd.not(x, heap, pipe);
        let strictly = bdd.and(nx, y, heap, pipe);
        let eq = {
            let xy = bdd.xor(x, y, heap, pipe);
            bdd.not(xy, heap, pipe)
        };
        let carry = bdd.and(eq, lt, heap, pipe);
        lt = bdd.or(strictly, carry, heap, pipe);
    }
    lt
}

/// x < y via borrow propagation of x - y (a structurally different
/// circuit computing the same predicate: the final borrow bit).
fn less_than_borrow<A: Allocator>(bdd: &mut Bdd, heap: &mut A, pipe: &mut Pipeline) -> u32 {
    let mut borrow = cache_conscious::apps::vis::FALSE;
    for i in 0..BITS {
        let x = bdd.var(2 * i, heap, pipe);
        let y = bdd.var(2 * i + 1, heap, pipe);
        // borrow' = (!x & y) | (!x & borrow) | (y & borrow)
        let nx = bdd.not(x, heap, pipe);
        let a = bdd.and(nx, y, heap, pipe);
        let b = bdd.and(nx, borrow, heap, pipe);
        let c = bdd.and(y, borrow, heap, pipe);
        let ab = bdd.or(a, b, heap, pipe);
        borrow = bdd.or(ab, c, heap, pipe);
    }
    borrow
}

fn verify<A: Allocator>(
    mut heap: A,
    use_hint: bool,
    machine: &MachineConfig,
) -> (bool, u64, usize) {
    let mut pipe = Pipeline::new(PipelineConfig::table1(), *machine);
    let mut bdd = Bdd::new(2 * BITS, use_hint);
    let f = less_than_ripple(&mut bdd, &mut heap, &mut pipe);
    let g = less_than_borrow(&mut bdd, &mut heap, &mut pipe);
    // Canonicity: equivalent functions are the same node.
    let equal = f == g;
    // Sanity: count satisfying assignments — x<y holds for C(2^10,2) pairs.
    let count = bdd.sat_count(f, &mut pipe);
    (
        equal && count == 1024 * 1023 / 2,
        pipe.finish().total(),
        bdd.node_count(),
    )
}

fn main() {
    let machine = MachineConfig::ultrasparc_e5000();

    let (ok, base_cycles, nodes) = verify(Malloc::new(machine.page_bytes), false, &machine);
    println!(
        "ripple `<` vs borrow `<` over {BITS}-bit operands: {}",
        if ok { "EQUIVALENT ✓" } else { "MISMATCH ✗" }
    );
    println!("BDD nodes: {nodes}");
    println!("\nsimulated cycles:");
    println!("  malloc              {base_cycles:>12}");

    let (ok2, cc_cycles, _) = verify(CcMalloc::new(&machine, Strategy::NewBlock), true, &machine);
    assert!(ok2);
    println!(
        "  ccmalloc new-block  {cc_cycles:>12}   ({:.1}% of malloc)",
        100.0 * cc_cycles as f64 / base_cycles as f64
    );
    println!("\n(the gap grows with BDD size — see `cargo run -p cc-bench --bin fig6`)");
}
