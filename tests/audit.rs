//! Acceptance tests for the `cc-audit` layout auditor (the ISSUE's
//! oracle): at the paper's microbenchmark scale, a `ccmorph`-reorganized
//! colored tree audits completely clean, while the same tree laid out by
//! the baseline `Malloc` produces specific COLOR-01 and CLUSTER-01
//! findings. Plus a byte-exact snapshot of the stable JSON rendering.

use cache_conscious::audit::{
    audit, scenarios, AuditConfig, AuditInput, AuditItem, ColorSpec, Rule, Severity,
};
use cache_conscious::sim::CacheGeometry;

/// Depths 0..17 — an odd maximum depth, so every 3-node subtree cluster
/// is full and perfect clustering is achievable.
const ACCEPTANCE_NODES: usize = (1 << 18) - 1;

#[test]
fn ccmorph_colored_tree_audits_clean_at_scale() {
    let input = scenarios::ccmorph_tree(ACCEPTANCE_NODES);
    let report = audit(&input, &AuditConfig::default());
    assert!(report.is_clean(), "{}", report.to_text());
    assert_eq!(report.stats.items, ACCEPTANCE_NODES);
    assert_eq!(report.stats.colocation_score, Some(1.0));
    assert_eq!(report.stats.hot_in_cold, 0);
    assert_eq!(report.stats.cold_in_hot, 0);
}

#[test]
fn malloc_tree_trips_color_01_and_cluster_01_at_scale() {
    let input = scenarios::malloc_tree(ACCEPTANCE_NODES);
    let report = audit(&input, &AuditConfig::default());

    let color = report.of_rule(Rule::Color01);
    assert_eq!(color.len(), 1, "{}", report.to_text());
    assert_eq!(color[0].severity, Severity::Error);
    assert!(
        !color[0].addrs.is_empty(),
        "finding names offending addresses"
    );
    assert!(color[0].message.contains("hot element"));
    assert!(report.stats.hot_in_cold > 0);

    let cluster = report.of_rule(Rule::Cluster01);
    assert_eq!(cluster.len(), 1);
    assert_eq!(cluster[0].severity, Severity::Error);
    assert!(!cluster[0].addrs.is_empty());
    // Malloc's preorder run co-locates at most every other parent-child
    // pair: the score sits far below the threshold.
    let score = report.stats.colocation_score.unwrap();
    assert!(score < 0.5, "got {score}");

    assert!(report.error_count() >= 2);
}

#[test]
fn list_oracles_at_scale() {
    let cfg = AuditConfig::default();
    let good = audit(&scenarios::ccmalloc_list(50_000), &cfg);
    assert!(good.is_clean(), "{}", good.to_text());
    let bad = audit(&scenarios::malloc_list(50_000), &cfg);
    assert_eq!(bad.of_rule(Rule::Cluster01).len(), 1, "{}", bad.to_text());
    assert_eq!(bad.stats.colocation_score, Some(0.0));
}

/// A tiny hand-built layout exercising a finding and the clean path, with
/// the exact JSON bytes asserted. If this test breaks, the JSON surface
/// changed — bump consumers deliberately, don't just update the string.
#[test]
fn json_rendering_is_byte_stable() {
    let geometry = CacheGeometry::new(64, 64, 1);
    let color = ColorSpec::new(geometry, 512, 0.5);
    let mut items: Vec<AuditItem> = (0..40)
        .map(|i| AuditItem {
            label: format!("node {i}"),
            addr: i * 64,
            size: 64,
            heat: 10.0,
        })
        .collect();
    items.push(AuditItem {
        label: "node 40".into(),
        addr: 3008,
        size: 64,
        heat: 100.0,
    });
    let input = AuditInput {
        items,
        pairs: vec![],
        geometry,
        page_bytes: 512,
        color: Some(color),
    };
    let report = audit(&input, &AuditConfig::default());
    let expected = "{\n\
        \x20 \"clean\": false,\n\
        \x20 \"stats\": {\n\
        \x20   \"items\": 41,\n\
        \x20   \"pairs\": 0,\n\
        \x20   \"colocation_score\": null,\n\
        \x20   \"hot_in_cold\": 1,\n\
        \x20   \"cold_in_hot\": 0\n\
        \x20 },\n\
        \x20 \"findings\": [\n\
        \x20   {\n\
        \x20     \"rule\": \"COLOR-01\",\n\
        \x20     \"severity\": \"error\",\n\
        \x20     \"message\": \"1 hot element(s) mapped to cold cache sets (e.g. node 40 at 0xbc0, heat 100.0 vs hot/cold boundary 10.0); cold data can evict them\",\n\
        \x20     \"addrs\": [\"0xbc0\"],\n\
        \x20     \"remediation\": \"recolor: place this element via the colored space's hot allocator (ccmorph with a ColorConfig), or raise hot_fraction\"\n\
        \x20   }\n\
        \x20 ]\n\
        }\n";
    assert_eq!(report.to_json(), expected);

    // The clean shape is stable too.
    let clean = audit(
        &AuditInput {
            items: vec![],
            pairs: vec![],
            geometry,
            page_bytes: 512,
            color: None,
        },
        &AuditConfig::default(),
    );
    let expected_clean = "{\n\
        \x20 \"clean\": true,\n\
        \x20 \"stats\": {\n\
        \x20   \"items\": 0,\n\
        \x20   \"pairs\": 0,\n\
        \x20   \"colocation_score\": null,\n\
        \x20   \"hot_in_cold\": 0,\n\
        \x20   \"cold_in_hot\": 0\n\
        \x20 },\n\
        \x20 \"findings\": []\n\
        }\n";
    assert_eq!(clean.to_json(), expected_clean);
}
