//! Placement is *transparent*: every Olden benchmark must compute the
//! same answer under every placement scheme — the paper's semantic
//! guarantee for `ccmalloc` (always) and `ccmorph` (given the
//! programmer's no-external-pointers guarantee).

use cache_conscious::olden::{health, mst, perimeter, treeadd, Scheme};
use cache_conscious::sim::MachineConfig;

fn all_schemes() -> Vec<Scheme> {
    let mut v = Scheme::FIGURE7.to_vec();
    v.push(Scheme::CcMallocNullHint);
    v
}

#[test]
fn treeadd_is_scheme_invariant() {
    let machine = MachineConfig::table1();
    let base = treeadd::run(Scheme::Base, 4096, &machine);
    assert_eq!(base.checksum, 4096 * 4097 / 2);
    for s in all_schemes() {
        assert_eq!(
            treeadd::run(s, 4096, &machine).checksum,
            base.checksum,
            "{s:?}"
        );
    }
}

#[test]
fn health_is_scheme_invariant() {
    let machine = MachineConfig::table1();
    let base = health::run(Scheme::Base, 2, 80, &machine);
    for s in all_schemes() {
        assert_eq!(
            health::run(s, 2, 80, &machine).checksum,
            base.checksum,
            "{s:?}"
        );
    }
}

#[test]
fn mst_is_scheme_invariant() {
    let machine = MachineConfig::table1();
    let base = mst::run(Scheme::Base, 96, 8, &machine);
    for s in all_schemes() {
        assert_eq!(
            mst::run(s, 96, 8, &machine).checksum,
            base.checksum,
            "{s:?}"
        );
    }
}

#[test]
fn perimeter_is_scheme_invariant() {
    let machine = MachineConfig::table1();
    let base = perimeter::run(Scheme::Base, 128, &machine);
    for s in all_schemes() {
        assert_eq!(
            perimeter::run(s, 128, &machine).checksum,
            base.checksum,
            "{s:?}"
        );
    }
}

/// Runs are fully deterministic: identical inputs give identical cycle
/// counts, not just identical answers.
#[test]
fn runs_are_deterministic() {
    let machine = MachineConfig::table1();
    for s in [
        Scheme::Base,
        Scheme::CcMallocNewBlock,
        Scheme::CcMorphClusterColor,
    ] {
        let a = health::run(s, 2, 60, &machine);
        let b = health::run(s, 2, 60, &machine);
        assert_eq!(a.breakdown, b.breakdown, "{s:?}");
        assert_eq!(a.l2_misses, b.l2_misses, "{s:?}");
    }
}
