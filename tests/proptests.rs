//! Property-based tests on the core invariants, spanning crates.

use cache_conscious::audit::{audit, AuditConfig, AuditInput, AuditItem, ColorSpec, Rule};
use cache_conscious::core::ccmorph::{ccmorph, CcMorphParams, ColorConfig};
use cache_conscious::core::cluster::{dfs_chain_clusters, subtree_clusters, ClusterKind};
use cache_conscious::core::color::ColoredSpace;
use cache_conscious::core::topology::VecTree;
use cache_conscious::heap::{Allocator, CcMalloc, Malloc, Strategy, VirtualSpace};
use cache_conscious::model::StructureModel;
use cache_conscious::sim::cache::{Cache, WritePolicy};
use cache_conscious::sim::{CacheGeometry, MachineConfig};
use proptest::prelude::*;

proptest! {
    /// Every reachable node gets exactly one address, whatever the shape,
    /// cluster kind, or coloring.
    #[test]
    fn ccmorph_is_a_bijection(
        n in 1usize..400,
        arity in 1usize..5,
        elem in 8u64..100,
        colored in any::<bool>(),
        dfs_kind in any::<bool>(),
    ) {
        let mut t = VecTree::new(arity);
        for _ in 0..n { t.add_node(); }
        // Attach node i to parent (i-1)/arity: a full arity-ary tree.
        for i in 1..n {
            t.link((i - 1) / arity, i);
        }
        let machine = MachineConfig::ultrasparc_e5000();
        let mut vs = VirtualSpace::new(machine.page_bytes);
        let params = CcMorphParams {
            color: colored.then_some(ColorConfig::default()),
            cluster_kind: if dfs_kind { ClusterKind::DepthFirstChain } else { ClusterKind::SubtreeBfs },
            ..CcMorphParams::clustering_only(&machine, elem)
        };
        let layout = ccmorph(&t, &mut vs, &params);
        let mut addrs: Vec<u64> = (0..n).map(|i| layout.addr_of(i)).collect();
        addrs.sort_unstable();
        let before = addrs.len();
        addrs.dedup();
        prop_assert_eq!(addrs.len(), before, "duplicate addresses");
        // Elements never overlap.
        for w in addrs.windows(2) {
            prop_assert!(w[1] - w[0] >= elem);
        }
    }

    /// Both clusterings partition the node set.
    #[test]
    fn clusterings_partition(n in 1usize..300, k in 1usize..9) {
        let t = VecTree::complete_binary(n);
        for clusters in [subtree_clusters(&t, k), dfs_chain_clusters(&t, k)] {
            let mut all: Vec<usize> = clusters.iter().flat_map(|c| c.nodes.clone()).collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
            prop_assert!(clusters.iter().all(|c| c.nodes.len() <= k));
        }
    }

    /// Cold allocations never land in hot cache sets, for any geometry
    /// and fraction.
    #[test]
    fn coloring_separation(
        log_sets in 7u32..12,
        log_block in 4u32..8,
        frac in 0.05f64..0.95,
        allocs in 1usize..200,
        size in 1u64..64,
    ) {
        let geom = CacheGeometry::new(1 << log_sets, 1 << log_block, 1);
        let page = 4096u64.min(geom.sets() * geom.block_bytes() / 2);
        if geom.sets() * geom.block_bytes() < 2 * page { return Ok(()); }
        let mut vs = VirtualSpace::new(page);
        let mut cs = ColoredSpace::new(&mut vs, geom, page, frac, 1 << 22);
        let size = size.min(geom.block_bytes());
        let hot_set_bound = cs.hot_bytes_per_way() / geom.block_bytes();
        for _ in 0..allocs {
            let h = cs.alloc_hot(size);
            prop_assert!(geom.set_of(h) < hot_set_bound);
            let c = cs.alloc_cold(size);
            prop_assert!(geom.set_of(c) >= hot_set_bound);
        }
    }

    /// Allocators never return overlapping live allocations.
    #[test]
    fn allocations_never_overlap(
        sizes in prop::collection::vec(1u64..200, 1..120),
        strategy in prop::sample::select(vec![
            None,
            Some(Strategy::Closest),
            Some(Strategy::NewBlock),
            Some(Strategy::FirstFit),
        ]),
    ) {
        let machine = MachineConfig::ultrasparc_e5000();
        let mut heap: Box<dyn Allocator> = match strategy {
            None => Box::new(Malloc::new(machine.page_bytes)),
            Some(s) => Box::new(CcMalloc::new(&machine, s)),
        };
        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut hint = None;
        for (i, &sz) in sizes.iter().enumerate() {
            let a = heap.alloc_hint(sz, hint);
            for &(b, bsz) in &live {
                prop_assert!(a + sz <= b || b + bsz <= a,
                    "overlap: {a:#x}+{sz} vs {b:#x}+{bsz}");
            }
            live.push((a, sz));
            if i % 3 == 0 { hint = Some(a); }
            // Free every fifth allocation to exercise recycling.
            if i % 5 == 4 {
                let (b, _) = live.swap_remove(live.len() / 2);
                heap.free(b);
            }
        }
    }

    /// LRU cache sanity: hit rate of repeated scans of a set-sized window
    /// is 100% after warm-up; the miss count never exceeds accesses.
    #[test]
    fn cache_miss_bounds(ways in 1u64..5, accesses in 1u64..500) {
        let geom = CacheGeometry::new(16, 32, ways);
        let mut c = Cache::new(geom, WritePolicy::WriteBack);
        for i in 0..accesses {
            c.access((i % (16 * ways)) * 32, false);
        }
        let s = c.stats();
        prop_assert!(s.misses() <= s.accesses());
        // The working set fits exactly: only cold misses.
        prop_assert!(s.misses() <= 16 * ways);
    }

    /// The auditor is total: any bag of items, any affinity pairs, any
    /// geometry — it returns a well-formed, deterministic report rather
    /// than panicking.
    #[test]
    fn audit_accepts_arbitrary_layouts(
        seeds in prop::collection::vec(any::<u64>(), 1..80),
        pair_seeds in prop::collection::vec(any::<u64>(), 0..120),
        log_sets in 7u32..12,
        log_block in 4u32..8,
        assoc in 1u64..5,
        colored in any::<bool>(),
    ) {
        let geometry = CacheGeometry::new(1 << log_sets, 1 << log_block, assoc);
        let color = colored.then(|| ColorSpec::new(geometry, 512, 0.5));
        // Fan one seed out into addr/size/heat: overlaps, straddles and
        // duplicate addresses are all fair game for the auditor.
        let items: Vec<AuditItem> = seeds.iter().enumerate().map(|(i, &s)| AuditItem {
            label: format!("item {i}"),
            addr: s % (1 << 40),
            size: 1 + (s >> 40) % 200,
            heat: ((s >> 48) % 101) as f64 - 50.0,
        }).collect();
        let n = items.len();
        let pairs: Vec<(usize, usize)> = pair_seeds.iter()
            .map(|&s| ((s as usize) % n, ((s >> 32) as usize) % n))
            .collect();
        let input = AuditInput { items, pairs, geometry, page_bytes: 512, color };
        let cfg = AuditConfig::default();
        let report = audit(&input, &cfg);
        prop_assert_eq!(report.stats.items, n);
        prop_assert_eq!(audit(&input, &cfg).to_json(), report.to_json());
        prop_assert!(!report.to_text().is_empty());
        for f in &report.findings {
            prop_assert!(!f.message.is_empty());
            prop_assert!(f.addrs.len() <= cfg.max_reported_addrs);
        }
    }

    /// ccmorph with coloring never leaves a certainly-hot element in a
    /// cold cache set: COLOR-01 is structurally impossible on its output,
    /// whatever the tree shape or element size.
    #[test]
    fn ccmorph_coloring_never_trips_color_01(
        n in 1usize..3000,
        arity in 1usize..5,
        elem in 8u64..100,
    ) {
        let mut t = VecTree::new(arity);
        for _ in 0..n { t.add_node(); }
        for i in 1..n { t.link((i - 1) / arity, i); }
        let machine = MachineConfig::ultrasparc_e5000();
        let mut vs = VirtualSpace::new(machine.page_bytes);
        let params = CcMorphParams::clustering_and_coloring(&machine, elem);
        let layout = ccmorph(&t, &mut vs, &params);
        let report = audit(
            &AuditInput::from_tree_layout(&t, &layout, &params),
            &AuditConfig::default(),
        );
        prop_assert!(report.of_rule(Rule::Color01).is_empty(), "{}", report.to_text());
        prop_assert_eq!(report.stats.hot_in_cold, 0);
    }

    /// Analytic model invariants: miss rate in [0, 1], monotone in K and Rs.
    #[test]
    fn model_miss_rate_bounds(d in 1.0f64..64.0, k in 1.0f64..16.0, frac in 0.0f64..1.0) {
        let rs = frac * d;
        let m = StructureModel::new(d, k, rs);
        let r = m.steady_state_miss_rate();
        prop_assert!((0.0..=1.0).contains(&r));
        let better_k = StructureModel::new(d, k + 1.0, rs);
        prop_assert!(better_k.steady_state_miss_rate() <= r + 1e-12);
        let better_rs = StructureModel::new(d, k, (rs + 0.1 * d).min(d));
        prop_assert!(better_rs.steady_state_miss_rate() <= r + 1e-12);
    }
}
