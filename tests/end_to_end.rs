//! End-to-end integration: the paper's central claims, verified across
//! crate boundaries at test-friendly scale.

use cache_conscious::core::ccmorph::{CcMorphParams, ColorConfig};
use cache_conscious::core::cluster::Order;
use cache_conscious::core::rng::SplitMix64;
use cache_conscious::heap::VirtualSpace;
use cache_conscious::model::ctree::{ctree_model, predicted_speedup};
use cache_conscious::model::speedup::MissRates;
use cache_conscious::sim::{MachineConfig, MemorySink};
use cache_conscious::trees::bst::Bst;
use cache_conscious::trees::BST_NODE_BYTES;

const KEYS: u64 = (1 << 17) - 1; // 2.5 MB of tree on a 1 MB L2
const SEARCHES: u64 = 40_000;

fn steady_state(tree: &Bst, machine: &MachineConfig) -> (f64, MissRates) {
    let mut sink = MemorySink::new(*machine);
    let mut rng = SplitMix64::new(0xE2E);
    for _ in 0..SEARCHES / 2 {
        tree.search(2 * rng.below(KEYS), &mut sink, false);
    }
    sink.reset_stats();
    for _ in 0..SEARCHES {
        tree.search(2 * rng.below(KEYS), &mut sink, false);
    }
    let cycles = (sink.memory_cycles() as f64 + sink.insts() as f64 / 4.0) / SEARCHES as f64;
    let rates = MissRates::new(
        sink.system().l1_stats().miss_rate(),
        sink.system().l2_stats().miss_rate(),
    );
    (cycles, rates)
}

/// The headline: the full ccmorph pipeline (clustering + coloring) beats
/// the naive layout by a factor consistent with Figure 5's shape.
#[test]
fn ctree_beats_naive_by_a_large_factor() {
    let machine = MachineConfig::ultrasparc_e5000();
    let mut tree = Bst::build_complete(KEYS);
    tree.layout_sequential(Order::Random { seed: 13 });
    let (naive, _) = steady_state(&tree, &machine);

    let mut vs = VirtualSpace::new(machine.page_bytes);
    tree.morph(
        &mut vs,
        &CcMorphParams::clustering_and_coloring(&machine, BST_NODE_BYTES),
    );
    let (cc, _) = steady_state(&tree, &machine);

    let speedup = naive / cc;
    assert!(speedup > 2.0, "expected a big win, got {speedup:.2}x");
}

/// Clustering alone and coloring alone each contribute: the combination
/// is at least as good as clustering alone, which beats naive.
#[test]
fn techniques_compose() {
    let machine = MachineConfig::ultrasparc_e5000();
    let mut tree = Bst::build_complete(KEYS);
    tree.layout_sequential(Order::Random { seed: 13 });
    let (naive, _) = steady_state(&tree, &machine);

    let mut tree2 = Bst::build_complete(KEYS);
    let mut vs = VirtualSpace::new(machine.page_bytes);
    tree2.morph(
        &mut vs,
        &CcMorphParams::clustering_only(&machine, BST_NODE_BYTES),
    );
    let (cluster, _) = steady_state(&tree2, &machine);

    let mut tree3 = Bst::build_complete(KEYS);
    let mut vs3 = VirtualSpace::new(machine.page_bytes);
    tree3.morph(
        &mut vs3,
        &CcMorphParams {
            color: Some(ColorConfig::default()),
            ..CcMorphParams::clustering_only(&machine, BST_NODE_BYTES)
        },
    );
    let (both, _) = steady_state(&tree3, &machine);

    assert!(
        cluster < naive,
        "clustering must beat naive: {cluster} vs {naive}"
    );
    assert!(
        both <= cluster * 1.02,
        "adding coloring must not hurt: {both} vs {cluster}"
    );
}

/// The Section 5 model's L2 miss-rate prediction for the C-tree tracks
/// the simulator's measurement.
#[test]
fn model_tracks_measured_l2_miss_rate() {
    let machine = MachineConfig::ultrasparc_e5000();
    let mut tree = Bst::build_complete(KEYS);
    let mut vs = VirtualSpace::new(machine.page_bytes);
    tree.morph(
        &mut vs,
        &CcMorphParams::clustering_and_coloring(&machine, BST_NODE_BYTES),
    );
    let (_, rates) = steady_state(&tree, &machine);

    let predicted = ctree_model(KEYS, machine.l2, BST_NODE_BYTES, 0.5).steady_state_miss_rate();
    // The model is meant for relative comparisons (Section 5); accept a
    // generous band.
    assert!(
        (rates.l2 - predicted).abs() < 0.15,
        "measured {:.3} vs predicted {predicted:.3}",
        rates.l2
    );
}

/// The model's per-reference access-time prediction for the C-tree (the
/// Section 5.1 formula over Figure 9's miss rate) tracks the simulator's
/// measurement. The *naive* side of Figure 10's speedup assumes the
/// worst case (`m = 1`), which only holds for trees many times the L2 —
/// the full-scale comparison lives in the `fig10` binary — so here we
/// validate the cache-conscious side directly.
#[test]
fn model_access_time_prediction_is_in_band() {
    let machine = MachineConfig::ultrasparc_e5000();
    let mut tree = Bst::build_complete(KEYS);
    let mut vs = VirtualSpace::new(machine.page_bytes);
    tree.morph(
        &mut vs,
        &CcMorphParams::clustering_and_coloring(&machine, BST_NODE_BYTES),
    );
    let (_, rates) = steady_state(&tree, &machine);

    let model = ctree_model(KEYS, machine.l2, BST_NODE_BYTES, 0.5);
    // Per-reference expected time, with the paper's m_L1 = 1 assumption
    // (20-byte nodes see essentially no L1 reuse in 16-byte lines).
    let predicted = machine
        .latency
        .access_time(1.0, model.steady_state_miss_rate());
    let measured = machine.latency.access_time(rates.l1, rates.l2);
    // The model only credits reuse to the colored hot region; at this
    // scale (2.5x the L2) the cold portion also gets real reuse, so the
    // model is systematically conservative — the same direction as the
    // paper's reported ~15% underestimate of speedup (Section 5.4).
    let ratio = predicted / measured;
    assert!(
        (0.8..=2.0).contains(&ratio),
        "predicted {predicted:.2} vs measured {measured:.2} cycles/ref"
    );
    // And the full-speedup predictor at least produces a sane value here.
    let s = predicted_speedup(KEYS, machine.l2, BST_NODE_BYTES, 0.5, &machine.latency);
    assert!(s > 1.0 && s < 20.0);
}
